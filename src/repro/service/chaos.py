"""The ServiceChaos campaign: disturb the server, demand correctness.

Six disturbance classes, each against a fresh server, each with the
same two invariants: **zero wrong responses** (every non-shed response
byte-identical to an independently computed reference) and **bounded
p99** (no disturbance turns into an unbounded stall):

========== ==========================================================
worker-kill seeded ChaosMonkey SIGKILLs workers mid-job; retries must
            deliver correct values (``attempts > 1`` as evidence)
corruption  a cached payload is bit-flipped in place; the sha256
            re-check must reject it and the recompute must match the
            original exactly
overload    a burst past a tiny token bucket and queue trip: sheds
            carry Retry-After, the breaker opens, and a later probe
            re-closes it; everything admitted is still correct
malformed   oversize length headers, non-JSON bodies, non-object
            JSON, truncated frames -- all rejected and counted, and
            the server still answers a well-formed request after
slow-client a peer stalls mid-frame past the frame timeout; it is
            disconnected while concurrent healthy clients keep
            getting correct answers
drain       SIGTERM-style drain mid-flight: every accepted job
            completes and is delivered, new work is shed, nothing is
            lost
========== ==========================================================

Exit taxonomy (shared with ``faults`` / ``fuzz`` / ``checkpoint``, see
README): 0 = all invariants held, 1 = the campaign harness itself
failed, 2 = a disturbance produced a wrong response or a violated
invariant (a real finding).
"""

from __future__ import annotations

import asyncio
import json
import struct
import time
from typing import Dict, List, Optional, Tuple

from repro.harness.bench import write_json_atomic
from repro.harness.runner import ChaosMonkey
from repro.service.server import (ServiceClient, ServiceConfig,
                                  ServiceServer)
from repro.traces.store import canonical_json

SCHEMA = 1
#: no disturbance may push any response past this
P99_BOUND_MS = 30_000.0


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile; 0.0 for an empty sample."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1,
                max(0, round(q / 100.0 * (len(ordered) - 1))))
    return ordered[index]


def _reference(kind: str, params: Dict[str, object]) -> str:
    """The canonical text a correct response must carry, computed
    in-process with no server in the loop."""
    from repro.service import jobs as service_jobs

    fn_spec = service_jobs._SCALAR_FNS[kind]
    module, _, name = fn_spec.partition(":")
    import importlib

    value = getattr(importlib.import_module(module), name)(**params)
    return canonical_json(json.loads(json.dumps(value, sort_keys=True)))


def _wrong(response: Dict[str, object], expected: str) -> bool:
    return canonical_json(response.get("result")) != expected


async def _worker_kill(quick: bool, seed: int) -> Dict[str, object]:
    """Seeded mid-job SIGKILLs; retried jobs must still be correct."""
    count = 4 if quick else 8
    server = ServiceServer(ServiceConfig(
        max_workers=2, max_retries=3,
        backoff_base=0.01, backoff_jitter=0.5, jitter_seed=seed,
        chaos=ChaosMonkey(rate=0.7, seed=seed)))
    await server.start()
    latencies: List[float] = []
    wrong = retried = 0
    try:
        requests = [("fuzz", {"seed": seed * 100 + index, "mode": "isa",
                              "quick": True})
                    for index in range(count)]
        for kind, params in requests:
            expected = _reference(kind, params)
            started = time.perf_counter()
            response = await server.handle_request(
                {"id": kind, "kind": kind, "params": params})
            latencies.append((time.perf_counter() - started) * 1e3)
            if response["status"] != "ok" or _wrong(response, expected):
                wrong += 1
            if int(response.get("attempts", 1)) > 1:
                retried += 1
    finally:
        await server.drain()
        await server.close()
    return {"requests": count, "wrong": wrong, "retried": retried,
            "p99_ms": round(percentile(latencies, 99), 3),
            "held": wrong == 0 and retried >= 1}


async def _cache_corruption(quick: bool, seed: int) -> Dict[str, object]:
    """Bit-flip a cached payload; the recompute must match the original."""
    server = ServiceServer(ServiceConfig(max_workers=2))
    await server.start()
    latencies: List[float] = []
    wrong = 0
    try:
        params = {"seed": seed + 1, "mode": "isa", "quick": True}
        request = {"id": 1, "kind": "fuzz", "params": params}
        first = await server.handle_request(request)
        original = canonical_json(first["result"])
        key = first["key"]
        assert server.cache.corrupt(key), "prime did not populate cache"
        started = time.perf_counter()
        second = await server.handle_request(dict(request, id=2))
        latencies.append((time.perf_counter() - started) * 1e3)
        if second["cache"] != "miss":       # corrupt bytes must not serve
            wrong += 1
        if second["status"] != "ok" or \
                canonical_json(second["result"]) != original:
            wrong += 1
        third = await server.handle_request(dict(request, id=3))
        if third["cache"] != "hit" or \
                canonical_json(third["result"]) != original:
            wrong += 1                      # repaired entry serves again
    finally:
        await server.drain()
        await server.close()
    integrity = server.cache.integrity_failures
    return {"requests": 3, "wrong": wrong,
            "integrity_failures": integrity,
            "p99_ms": round(percentile(latencies, 99), 3),
            "held": wrong == 0 and integrity >= 1}


async def _overload(quick: bool, seed: int) -> Dict[str, object]:
    """Burst past the bucket and queue trip; breaker opens, re-closes."""
    burst = 12 if quick else 24
    server = ServiceServer(ServiceConfig(
        max_workers=2, batch_max=4, max_batches=1,
        rate_capacity=6.0, rate_per_s=4.0,
        max_inflight_per_client=4, max_queue_depth=64,
        queue_trip_depth=4, breaker_open_s=0.5,
        default_deadline_s=30.0))
    await server.start()
    wrong = shed = 0
    sheds_hinted = 0
    latencies: List[float] = []

    async def one(index: int) -> None:
        nonlocal wrong, shed, sheds_hinted
        params = {"seconds": 0.05}
        started = time.perf_counter()
        response = await server.handle_request(
            {"id": index, "kind": "sleep", "params": params,
             "client": f"burst{index % 6}", "no_cache": True})
        latencies.append((time.perf_counter() - started) * 1e3)
        if response["status"] == "shed":
            shed += 1
            if float(response.get("retry_after_s", 0)) > 0:
                sheds_hinted += 1
        elif response["status"] != "ok" or \
                response["result"].get("slept_s") != 0.05:
            wrong += 1

    try:
        await asyncio.gather(*(one(index) for index in range(burst)))
        opened = server.breaker.opens >= 1
        # wait out the open interval, then probe: the half-open probe
        # must succeed and close the breaker again
        await asyncio.sleep(0.6)
        probe = await server.handle_request(
            {"id": "probe", "kind": "sleep",
             "params": {"seconds": 0.01}, "client": "probe",
             "no_cache": True})
        if probe["status"] != "ok":
            wrong += 1
        reclosed = server.breaker.state == "closed" and \
            server.breaker.closes >= 1
    finally:
        await server.drain()
        await server.close()
    return {"requests": burst + 1, "wrong": wrong, "shed": shed,
            "sheds_with_retry_after": sheds_hinted,
            "breaker_opened": opened, "breaker_reclosed": reclosed,
            "p99_ms": round(percentile(latencies, 99), 3),
            "held": (wrong == 0 and shed >= 1 and sheds_hinted == shed
                     and opened and reclosed)}


async def _malformed_frames(quick: bool, seed: int) -> Dict[str, object]:
    """Frames that lie; the server must reject, count, and survive."""
    server = ServiceServer(ServiceConfig(max_workers=1,
                                         frame_timeout_s=2.0))
    await server.start()
    wrong = rejected = 0
    latencies: List[float] = []
    attacks: List[Tuple[str, bytes]] = [
        ("oversize-header", struct.pack(">I", 1 << 30)),
        ("not-json", struct.pack(">I", 5) + b";;;;;"),
        ("non-object", struct.pack(">I", 4) + b"1234"),
        ("truncated-body", struct.pack(">I", 100) + b"only-this"),
    ]
    try:
        for label, frame in attacks:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            writer.write(frame)
            await writer.drain()
            if label == "truncated-body":
                writer.close()          # EOF mid-body, not a stall
                await writer.wait_closed()
            else:
                try:
                    await asyncio.wait_for(reader.read(1 << 16), 2.0)
                except asyncio.TimeoutError:
                    pass
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
            await asyncio.sleep(0.05)
        rejected = server.stats.frames_malformed
        # the server still serves a healthy client afterwards
        client = ServiceClient(port=server.port)
        await client.connect()
        started = time.perf_counter()
        response = await client.request("ping")
        latencies.append((time.perf_counter() - started) * 1e3)
        if response["status"] != "ok":
            wrong += 1
        await client.close()
    finally:
        await server.drain()
        await server.close()
    return {"requests": len(attacks) + 1, "wrong": wrong,
            "rejected": rejected,
            "p99_ms": round(percentile(latencies, 99), 3),
            "held": wrong == 0 and rejected >= 3}


async def _slow_client(quick: bool, seed: int) -> Dict[str, object]:
    """A peer stalls mid-frame; healthy clients must not notice."""
    server = ServiceServer(ServiceConfig(max_workers=1,
                                         frame_timeout_s=0.3))
    await server.start()
    wrong = 0
    latencies: List[float] = []
    try:
        _reader, stall_writer = await asyncio.open_connection(
            "127.0.0.1", server.port)
        # claim 100 bytes, deliver 10, then stall past the frame timeout
        stall_writer.write(struct.pack(">I", 100) + b"0123456789")
        await stall_writer.drain()
        client = ServiceClient(port=server.port)
        await client.connect()
        for index in range(4 if quick else 8):
            started = time.perf_counter()
            response = await client.request("ping")
            latencies.append((time.perf_counter() - started) * 1e3)
            if response["status"] != "ok":
                wrong += 1
            await asyncio.sleep(0.06)
        # the disconnect must land on its own (frame timeout), not be
        # confused with us closing the stalled socket below
        deadline = time.monotonic() + 5.0
        while (server.stats.slow_disconnects < 1
               and time.monotonic() < deadline):
            await asyncio.sleep(0.02)
        await client.close()
        stall_writer.close()
        try:
            await stall_writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        disconnects = server.stats.slow_disconnects
    finally:
        await server.drain()
        await server.close()
    return {"requests": len(latencies), "wrong": wrong,
            "slow_disconnects": disconnects,
            "p99_ms": round(percentile(latencies, 99), 3),
            "held": wrong == 0 and disconnects >= 1}


async def _drain_mid_flight(quick: bool, seed: int) -> Dict[str, object]:
    """Drain with work accepted: nothing accepted may be lost."""
    accepted = 3 if quick else 6
    server = ServiceServer(ServiceConfig(max_workers=2, batch_max=2,
                                         max_batches=1))
    await server.start()
    wrong = 0
    latencies: List[float] = []

    async def one(index: int) -> Dict[str, object]:
        started = time.perf_counter()
        response = await server.handle_request(
            {"id": index, "kind": "sleep",
             "params": {"seconds": 0.2 + index * 1e-3},
             "client": f"d{index}", "no_cache": True})
        latencies.append((time.perf_counter() - started) * 1e3)
        return response

    try:
        tasks = [asyncio.create_task(one(index))
                 for index in range(accepted)]
        await asyncio.sleep(0.05)           # all accepted, some in flight
        await server.drain()
        responses = await asyncio.gather(*tasks)
        completed = sum(1 for response in responses
                        if response["status"] == "ok")
        wrong += sum(1 for response in responses
                     if response["status"] not in ("ok",))
        # post-drain work is shed, not silently dropped
        late = await server.handle_request(
            {"id": "late", "kind": "sleep", "params": {"seconds": 0.01},
             "client": "late", "no_cache": True})
        shed_after = late["status"] == "shed" and \
            late.get("reason") == "draining"
    finally:
        await server.close()
    return {"accepted": accepted, "completed": completed,
            "lost": accepted - completed, "wrong": wrong,
            "shed_after_drain": shed_after,
            "p99_ms": round(percentile(latencies, 99), 3),
            "held": (completed == accepted and wrong == 0
                     and shed_after)}


DISTURBANCES = (
    ("worker-kill", _worker_kill),
    ("cache-corruption", _cache_corruption),
    ("overload", _overload),
    ("malformed-frame", _malformed_frames),
    ("slow-client", _slow_client),
    ("drain", _drain_mid_flight),
)


async def _campaign(quick: bool, seed: int) -> Dict[str, object]:
    disturbances: Dict[str, object] = {}
    for name, disturbance in DISTURBANCES:
        disturbances[name] = await disturbance(quick, seed)
    rows = list(disturbances.values())
    wrong = sum(int(row["wrong"]) for row in rows)
    p99 = max(float(row["p99_ms"]) for row in rows)
    held = all(bool(row["held"]) for row in rows)
    overload = disturbances["overload"]
    summary = {
        "wrong_responses": wrong,
        "all_held": held,
        "breaker_opened": bool(overload["breaker_opened"]),
        "breaker_reclosed": bool(overload["breaker_reclosed"]),
        "drain_lost": int(disturbances["drain"]["lost"]),
        "worst_p99_ms": round(p99, 3),
        "p99_bound_ms": P99_BOUND_MS,
        "exit_code": 0 if held and p99 <= P99_BOUND_MS else 2,
    }
    return {"schema": SCHEMA, "quick": quick, "seed": seed,
            "disturbances": disturbances, "summary": summary}


def run_campaign(quick: bool = False, seed: int = 0,
                 output: Optional[str] = None) -> Dict[str, object]:
    """Run every disturbance; write the report when ``output`` is set."""
    report = asyncio.run(_campaign(quick, seed))
    if output is not None:
        write_json_atomic(output, report)
    return report
