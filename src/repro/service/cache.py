"""The content-addressed result cache behind the service.

Requests are keyed by a sha256 hash of ``(kind, params)`` canonicalised
by the *same* :func:`repro.traces.store.canonical_json` that keys trace
captures -- one canonicalisation, two caches, no drift.  Values are the
canonical JSON **bytes** of the response result, so a cache hit replays
the byte-identical payload a cold computation produced: the acceptance
oracle (full-state signature equality between cached and recomputed
responses) falls straight out of storing text, not objects.

Integrity mirrors the trace store's sidecar discipline in memory: every
entry carries the sha256 of its payload, :meth:`ResultCache.get`
re-verifies it on every hit, and a mismatch (bit rot, or the chaos
campaign's deliberate :meth:`ResultCache.corrupt`) is a counted miss
that evicts the entry -- never a silently wrong response.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.traces.store import canonical_json

#: bump when the response payload semantics change -- part of every
#: request key, so stale entries from an old format are never matched
SERVICE_FORMAT = 1


def request_key(kind: str, params: Dict[str, object]) -> str:
    """The content address of a service request.

    Structurally equal requests -- whatever their dict insertion order,
    and with tuples and lists interchangeable in ``params`` -- hash to
    the same 24-hex-digit key; any semantic change to ``kind``,
    ``params``, or :data:`SERVICE_FORMAT` changes it.
    """
    material = {"kind": kind, "params": params, "format": SERVICE_FORMAT}
    return hashlib.sha256(canonical_json(material).encode()).hexdigest()[:24]


class ResultCache:
    """In-memory LRU of canonical response payloads, digest-verified.

    ``max_entries`` bounds memory; inserts past the bound evict the
    least-recently-used entry (``evictions`` counts them).  ``hits``,
    ``misses``, and ``integrity_failures`` mirror the trace store's
    accounting so ``service.cache.*`` metrics read the same way as the
    trace-cache columns in BENCH reports.
    """

    def __init__(self, max_entries: int = 4096):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, Tuple[bytes, str]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.integrity_failures = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[bytes]:
        """The cached payload bytes, or ``None`` on miss.

        Every hit re-verifies the stored sha256; a corrupt payload is
        evicted and counted as both an integrity failure and a miss.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        payload, digest = entry
        if hashlib.sha256(payload).hexdigest() != digest:
            self.integrity_failures += 1
            self.misses += 1
            del self._entries[key]
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return payload

    def put(self, key: str, payload: bytes) -> None:
        """Store payload bytes under ``key``, evicting LRU past the cap."""
        self._entries[key] = (payload, hashlib.sha256(payload).hexdigest())
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def put_result(self, key: str, result: Dict[str, object]) -> bytes:
        """Canonicalise ``result`` to bytes, store, and return them."""
        payload = canonical_json(result).encode()
        self.put(key, payload)
        return payload

    def corrupt(self, key: str) -> bool:
        """Flip one payload byte *without* updating the digest.

        The chaos campaign's hook: after this, the next :meth:`get` of
        ``key`` must detect the mismatch and miss rather than serve the
        damaged bytes.  Returns ``False`` when the key is absent.
        """
        entry = self._entries.get(key)
        if entry is None:
            return False
        payload, digest = entry
        damaged = bytes([payload[0] ^ 0xFF]) + payload[1:]
        self._entries[key] = (damaged, digest)
        return True

    def stats(self) -> Dict[str, int]:
        """Counters plus current size, for metrics harvest."""
        return {"hits": self.hits, "misses": self.misses,
                "integrity_failures": self.integrity_failures,
                "evictions": self.evictions, "entries": len(self._entries)}
