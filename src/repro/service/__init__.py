"""Resilient simulation-as-a-service: the async job server.

The repo's facilities -- bench sweeps, fault campaigns, fuzzing, trace
capture -- were all one-shot CLI invocations: nothing amortised repeated
work across clients and nothing exercised the system under sustained
concurrent load.  ``repro.service`` wraps the hardened
:class:`~repro.harness.runner.Runner` in an asyncio front end:

* :mod:`repro.service.protocol` -- length-prefixed JSON frames over a
  local TCP socket;
* :mod:`repro.service.cache` -- the content-addressed
  :class:`ResultCache`, keyed by a sha256 hash of (request kind,
  canonical params) exactly the way
  :func:`repro.traces.store.descriptor_key` keys trace captures;
* :mod:`repro.service.admission` -- token-bucket admission control with
  per-client in-flight bounds and a global queue-depth cap;
* :mod:`repro.service.breaker` -- the circuit breaker that sheds load
  (fast-fail with a ``Retry-After`` hint) when the pool's failure rate
  or the queue depth crosses its thresholds;
* :mod:`repro.service.server` -- the server itself: request coalescing
  (concurrent identical misses share one computation), round-robin
  client fairness, deadline propagation into Runner job timeouts, the
  cache-only degradation mode, and the SIGTERM drain that loses no
  accepted job;
* :mod:`repro.service.jobs` -- the picklable job points the pool runs
  (assemble/run/sweep/trace/fault/fuzz);
* :mod:`repro.service.chaos` -- the ``repro service-chaos`` campaign:
  seeded worker SIGKILLs, injected cache corruption, overload bursts,
  malformed frames, and slow-client attacks, asserting zero wrong
  responses throughout;
* :mod:`repro.service.loadgen` -- the zipf-mix load generator behind
  ``repro service-bench`` and the committed ``BENCH_service.json``.

See DESIGN.md "Simulation as a service" for the protocol, the cache
key derivation, the breaker state machine, and the degradation ladder.
"""

from repro.service.admission import Admission, AdmissionController, TokenBucket
from repro.service.breaker import CircuitBreaker
from repro.service.cache import ResultCache, request_key
from repro.service.protocol import (MAX_FRAME_BYTES, ProtocolError,
                                    encode_frame, read_frame)
from repro.service.server import ServiceConfig, ServiceServer, ServiceStats

__all__ = [
    "Admission",
    "AdmissionController",
    "CircuitBreaker",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "ResultCache",
    "ServiceConfig",
    "ServiceServer",
    "ServiceStats",
    "TokenBucket",
    "encode_frame",
    "read_frame",
    "request_key",
]
