"""The circuit breaker: fail fast while the pool is unhealthy.

A three-state machine over a sliding window of job outcomes:

* **closed** -- normal service.  Outcomes feed the window; when at
  least ``min_samples`` are present and the failure fraction reaches
  ``failure_threshold``, the breaker opens.
* **open** -- compute requests shed instantly (``Retry-After`` =
  remaining open time); cache hits still serve, which is the
  "cache-only degradation" rung of the ladder.  After ``open_seconds``
  the next :meth:`allow` moves to half-open.
* **half-open** -- exactly one probe request is admitted.  Success
  closes the breaker (window reset); failure re-opens it for another
  full ``open_seconds``.

The server can also :meth:`trip` the breaker directly on queue-depth
pressure -- saturation is a health signal even when no job has failed
yet.  Every transition is recorded with its reason; ``opens`` /
``closes`` feed the ``service.breaker.*`` metrics and the chaos
campaign's "breaker opened and re-closed" assertion.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Dict, List, Tuple

#: gauge encoding for service.breaker.state
STATE_CODES = {"closed": 0, "open": 1, "half-open": 2}


class CircuitBreaker:
    """Sliding-window failure-rate breaker with an injectable clock."""

    def __init__(self, window: int = 32, failure_threshold: float = 0.5,
                 min_samples: int = 8, open_seconds: float = 2.0,
                 clock: Callable[[], float] = time.monotonic):
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        self.window = window
        self.failure_threshold = failure_threshold
        self.min_samples = min_samples
        self.open_seconds = open_seconds
        self._clock = clock
        self._outcomes: Deque[bool] = deque(maxlen=window)
        self._state = "closed"
        self._opened_at = 0.0
        self.opens = 0
        self.closes = 0
        self.transitions: List[Tuple[float, str, str]] = []

    @property
    def state(self) -> str:
        return self._state

    def _move(self, state: str, reason: str) -> None:
        if state == self._state:
            return
        self.transitions.append((self._clock(), state, reason))
        if state == "open":
            self.opens += 1
            self._opened_at = self._clock()
        elif state == "closed":
            self.closes += 1
            self._outcomes.clear()
        self._state = state

    def allow(self) -> bool:
        """May a compute request proceed right now?

        In the open state this is where the open→half-open timer fires;
        the half-open state admits exactly one probe (subsequent calls
        return ``False`` until that probe's outcome is recorded).
        """
        if self._state == "closed":
            return True
        if self._state == "open":
            if self._clock() - self._opened_at >= self.open_seconds:
                self._move("half-open", "open interval elapsed")
                return True
            return False
        return False                 # half-open: probe already in flight

    def record(self, ok: bool) -> None:
        """Feed one job outcome into the window and the state machine."""
        if self._state == "half-open":
            if ok:
                self._move("closed", "half-open probe succeeded")
            else:
                self._move("open", "half-open probe failed")
            return
        self._outcomes.append(ok)
        if self._state == "closed" and len(self._outcomes) >= \
                self.min_samples:
            failures = sum(1 for outcome in self._outcomes if not outcome)
            if failures / len(self._outcomes) >= self.failure_threshold:
                self._move("open",
                           f"failure rate {failures}/{len(self._outcomes)}")

    def trip(self, reason: str) -> None:
        """Force the breaker open (queue-depth pressure, manual shed)."""
        if self._state != "open":
            self._move("open", reason)

    def retry_after_s(self) -> float:
        """The remaining open time -- the shed response's retry hint."""
        if self._state != "open":
            return 0.0
        remaining = self.open_seconds - (self._clock() - self._opened_at)
        return max(0.1, remaining)

    def stats(self) -> Dict[str, object]:
        """State, counters, and transition log for metrics and reports."""
        return {"state": self._state,
                "state_code": STATE_CODES[self._state],
                "opens": self.opens, "closes": self.closes,
                "transitions": [
                    {"at": round(at, 6), "to": to, "reason": reason}
                    for at, to, reason in self.transitions]}
