"""Length-prefixed JSON framing for the service socket.

A frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding one object.  The framing is deliberately
minimal -- the robustness interest is in how the *server* survives
frames that lie: a length header larger than :data:`MAX_FRAME_BYTES`
(memory-exhaustion attack), a connection that stalls mid-frame (slow
client holding a reader task hostage), truncated bodies, bodies that
are not JSON, and JSON that is not an object.  :func:`read_frame`
classifies all of those so the server can count and shed them without
ever crashing a connection handler.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Dict, Optional

#: hard ceiling on a frame body; a header claiming more is an attack or
#: a corrupted stream, never a legitimate request
MAX_FRAME_BYTES = 16 * 1024 * 1024

HEADER = struct.Struct(">I")


class ProtocolError(ValueError):
    """A malformed frame: bad length, truncation, or undecodable body."""


def encode_frame(payload: Dict[str, object]) -> bytes:
    """Encode one JSON-able dict as a length-prefixed frame."""
    body = json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode()
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame body of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte ceiling")
    return HEADER.pack(len(body)) + body


async def _read_exactly(reader: asyncio.StreamReader, count: int,
                        timeout: Optional[float]) -> bytes:
    if timeout is None:
        return await reader.readexactly(count)
    return await asyncio.wait_for(reader.readexactly(count), timeout)


async def read_frame(reader: asyncio.StreamReader, *,
                     max_bytes: int = MAX_FRAME_BYTES,
                     timeout: Optional[float] = None,
                     ) -> Optional[Dict[str, object]]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    The *first* byte is awaited without a timeout -- an idle connection
    between requests is healthy.  Once a frame has started, the rest of
    the header and the whole body must arrive within ``timeout``
    seconds; a stall raises :class:`asyncio.TimeoutError` so the caller
    can classify the peer as a slow client and disconnect it.  A bad
    length, a truncated body, or an undecodable/non-object body raises
    :class:`ProtocolError`.
    """
    try:
        first = await reader.readexactly(1)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None                       # clean EOF between frames
        raise ProtocolError("connection closed inside a frame "
                            "header") from exc
    try:
        rest = await _read_exactly(reader, HEADER.size - 1, timeout)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed inside a frame "
                            "header") from exc
    (length,) = HEADER.unpack(first + rest)
    if length > max_bytes:
        raise ProtocolError(
            f"frame header claims {length} bytes; ceiling is {max_bytes}")
    try:
        body = await _read_exactly(reader, length, timeout)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed {len(exc.partial)}/{length} bytes into "
            f"a frame body") from exc
    try:
        payload = json.loads(body.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame body is {type(payload).__name__}, not an object")
    return payload


async def write_frame(writer: asyncio.StreamWriter,
                      payload: Dict[str, object]) -> None:
    """Encode and send one frame, draining the transport buffer."""
    writer.write(encode_frame(payload))
    await writer.drain()
