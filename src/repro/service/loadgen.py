"""The zipf-mix load generator behind ``repro service-bench``.

Hundreds of synthetic clients, each its own TCP connection, draw
requests from a shared catalog under a zipf(s) popularity skew -- the
paper's own re-run-the-suite-across-design-points methodology is
exactly this kind of dedupable mix, which is what makes the
content-addressed cache the headline economics.  The run publishes
p50/p99 latency split by cache outcome, hit rate, shed rate, and
breaker transitions into ``BENCH_service.json`` (gated by
``check_results.py --service``), and finishes with an **equivalence
pass**: every catalog entry is recomputed with ``no_cache`` and its
canonical payload compared byte-for-byte against the cached response --
the differential-oracle-backed proof that a hit replays exactly what a
cold computation produces.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Dict, List, Optional, Tuple

from repro.harness.bench import write_json_atomic
from repro.service.chaos import percentile
from repro.service.server import (ServiceClient, ServiceConfig,
                                  ServiceServer)
from repro.traces.store import canonical_json

SCHEMA = 1

#: workloads in the hot part of the catalog (short, deterministic)
_RUN_WORKLOADS = ("fib", "perm", "sieve", "bubble", "towers", "queens",
                  "intmm", "quick")

_ASM_SOURCE = """
        addi r1, r0, 0
loop:   addi r1, r1, 1
        addi r2, r1, -6
        beq  r2, r0, done
        nop
        nop
        br   loop
        nop
        nop
done:   halt
        nop
        nop
"""


def build_catalog(size: int, seed: int) -> List[Tuple[str, dict]]:
    """``size`` deterministic (kind, params) entries, hot mix first."""
    entries: List[Tuple[str, dict]] = []
    for name in _RUN_WORKLOADS:
        entries.append(("run", {"workload": name}))
    for index in range(4):
        entries.append(("fuzz", {"seed": seed + index, "mode": "isa",
                                 "quick": True}))
    entries.append(("trace", {"sets": 128, "ways": 1, "block_words": 4,
                              "trace_length": 5_000}))
    entries.append(("trace", {"sets": 64, "ways": 2, "block_words": 4,
                              "trace_length": 5_000}))
    entries.append(("sweep", {
        "experiment": "ecache-size",
        "points": [{"size_words": 16_384, "references": 20_000,
                    "data_words": 40_000},
                   {"size_words": 65_536, "references": 20_000,
                    "data_words": 40_000}]}))
    entries.append(("assemble", {"source": _ASM_SOURCE}))
    entries.append(("fault", {"seed": seed,
                              "fault_class": "icache-valid",
                              "max_events": 2}))
    while len(entries) < size:
        entries.append(("fuzz", {"seed": seed + 1000 + len(entries),
                                 "mode": "isa", "quick": True}))
    return entries[:size]


def zipf_weights(count: int, s: float) -> List[float]:
    """Unnormalised zipf(s) popularity weights for ranks 1..count."""
    return [1.0 / (rank ** s) for rank in range(1, count + 1)]


async def _client_task(index: int, port: int,
                       catalog: List[Tuple[str, dict]],
                       weights: List[float], requests: int, seed: int,
                       samples: List[dict]) -> None:
    """One synthetic client: connect, draw from the zipf mix, record."""
    rng = random.Random(seed * 100_003 + index)
    client = ServiceClient(port=port)
    await client.connect()
    try:
        for _ in range(requests):
            kind, params = rng.choices(catalog, weights=weights, k=1)[0]
            started = time.perf_counter()
            response = await client.request(
                kind, params, client=f"lg{index}")
            if response["status"] == "shed":
                # honour the hint once, like a well-behaved client
                await asyncio.sleep(min(
                    0.5, float(response.get("retry_after_s", 0.1))))
                started = time.perf_counter()
                response = await client.request(
                    kind, params, client=f"lg{index}")
            samples.append({
                "status": response["status"],
                "cache": response.get("cache", "none"),
                "ms": (time.perf_counter() - started) * 1e3})
    finally:
        await client.close()


async def _equivalence_pass(server: ServiceServer,
                            catalog: List[Tuple[str, dict]],
                            ) -> Dict[str, int]:
    """Recompute every entry uncached; payloads must match the cache."""
    checked = mismatches = 0
    for kind, params in catalog:
        cached = await server.handle_request(
            {"id": "eq-cached", "kind": kind, "params": params,
             "client": "equiv"})
        fresh = await server.handle_request(
            {"id": "eq-fresh", "kind": kind, "params": params,
             "client": "equiv", "no_cache": True})
        if cached["status"] != "ok" or fresh["status"] != "ok":
            mismatches += 1
            continue
        checked += 1
        if canonical_json(cached["result"]) != \
                canonical_json(fresh["result"]):
            mismatches += 1
    return {"checked": checked, "mismatches": mismatches}


async def _run(clients: int, requests_per_client: int, catalog_size: int,
               zipf_s: float, seed: int, quick: bool,
               max_workers: int) -> Dict[str, object]:
    config = ServiceConfig(
        max_workers=max_workers,
        rate_capacity=max(64.0, clients * 1.5),
        rate_per_s=max(32.0, clients / 2.0),
        max_inflight_per_client=8,
        max_queue_depth=max(64, clients * 2),
        jitter_seed=seed)
    server = ServiceServer(config)
    await server.start()
    catalog = build_catalog(catalog_size, seed)
    weights = zipf_weights(len(catalog), zipf_s)
    samples: List[dict] = []
    wall_started = time.perf_counter()
    try:
        await asyncio.gather(*(
            _client_task(index, server.port, catalog, weights,
                         requests_per_client, seed, samples)
            for index in range(clients)))
        wall_s = time.perf_counter() - wall_started
        equivalence = await _equivalence_pass(server, catalog)
        snapshot = server.snapshot()
    finally:
        await server.drain()
        await server.close()

    latencies = [s["ms"] for s in samples]
    hits = [s["ms"] for s in samples if s["cache"] == "hit"]
    misses = [s["ms"] for s in samples if s["cache"] == "miss"]
    coalesced = [s["ms"] for s in samples
                 if s["cache"] == "coalesced"]
    ok = sum(1 for s in samples if s["status"] == "ok")
    shed = sum(1 for s in samples if s["status"] == "shed")
    errors = len(samples) - ok - shed
    hit_p50 = percentile(hits, 50)
    miss_p50 = percentile(misses, 50)
    return {
        "schema": SCHEMA,
        "quick": quick,
        "seed": seed,
        "clients": clients,
        "requests_per_client": requests_per_client,
        "catalog_size": len(catalog),
        "zipf_s": zipf_s,
        "requests_sent": len(samples),
        "responses": {"ok": ok, "shed": shed, "error": errors},
        "hit_rate": round(len(hits) / len(samples), 6) if samples
        else 0.0,
        "shed_rate": round(
            snapshot["service"]["shed"]
            / max(1, snapshot["service"]["requests"]), 6),
        "latency_ms": {
            "p50": round(percentile(latencies, 50), 6),
            "p99": round(percentile(latencies, 99), 6),
            "hit_p50": round(hit_p50, 6),
            "hit_p99": round(percentile(hits, 99), 6),
            "miss_p50": round(miss_p50, 6),
            "miss_p99": round(percentile(misses, 99), 6),
            "coalesced_p50": round(percentile(coalesced, 50), 6),
        },
        "hit_speedup_p50": round(miss_p50 / hit_p50, 3)
        if hit_p50 > 0 and miss_p50 > 0 else 0.0,
        "equivalence": equivalence,
        "breaker": snapshot["breaker"],
        "cache": snapshot["cache"],
        "server": snapshot["service"],
        "wall_s": round(wall_s, 3),
    }


def run_loadgen(clients: int = 120, requests_per_client: int = 10,
                catalog_size: int = 16, zipf_s: float = 1.1,
                seed: int = 1987, quick: bool = False,
                max_workers: int = 2,
                output: Optional[str] = None) -> Dict[str, object]:
    """Run the load generator; write ``{"service": ...}`` to ``output``."""
    if quick:
        clients = min(clients, 24)
        requests_per_client = min(requests_per_client, 5)
        catalog_size = min(catalog_size, 10)
    section = asyncio.run(_run(clients, requests_per_client,
                               catalog_size, zipf_s, seed, quick,
                               max_workers))
    payload = {"service": section}
    if output is not None:
        write_json_atomic(output, payload)
    return payload
