"""The asyncio job server: cache, coalesce, admit, dispatch, degrade.

One request travels this ladder (each rung is a reason the rungs below
never run):

1. **cache hit** -- the canonical payload replays in microseconds;
2. **coalesce** -- an identical request is already computing; share its
   future instead of paying twice;
3. **drain** -- a SIGTERM arrived: accepted work finishes, new work is
   shed with ``Retry-After``;
4. **breaker** -- the pool is unhealthy: compute requests shed fast
   (hits above still serve -- that *is* the cache-only mode);
5. **admission** -- token bucket, per-client in-flight cap, queue cap;
6. **dispatch** -- the request joins its client's queue; the dispatcher
   round-robins across clients (fairness), batches jobs onto the
   hardened :class:`~repro.harness.runner.Runner`, and propagates the
   request deadline into each job's timeout.

Responses are JSON objects ``{id, status, cache, result, ...}`` with
``status`` one of ``ok | error | shed | bad-request`` and ``cache`` one
of ``hit | coalesced | miss | none``.  A shed response always carries
``retry_after_s``.  Results are cached as canonical JSON text, so a hit
is byte-identical to the cold computation it replays.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import logging
import time
from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional

from repro.harness.runner import ChaosMonkey, Job, JobResult, Runner
from repro.service import jobs as service_jobs
from repro.service.admission import (AdmissionController, TokenBucket,
                                     stable_client_id)
from repro.service.breaker import CircuitBreaker
from repro.service.cache import ResultCache, request_key
from repro.service.protocol import (MAX_FRAME_BYTES, ProtocolError,
                                    read_frame, write_frame)

logger = logging.getLogger(__name__)


@dataclasses.dataclass
class ServiceConfig:
    """Everything tunable about one server instance."""

    host: str = "127.0.0.1"
    port: int = 0                       #: 0 = ephemeral; see Server.port
    max_workers: int = 2
    #: max Runner jobs per dispatched batch, and concurrent batches
    batch_max: int = 8
    max_batches: int = 2
    #: mid-frame stall budget before a peer is a slow client
    frame_timeout_s: float = 5.0
    max_frame_bytes: int = MAX_FRAME_BYTES
    #: request deadline when the client names none; propagates into the
    #: Runner job timeout (min with job_timeout_s)
    default_deadline_s: float = 120.0
    job_timeout_s: float = 60.0
    rate_capacity: float = 256.0
    rate_per_s: float = 128.0
    max_inflight_per_client: int = 8
    max_queue_depth: int = 256
    #: queue depth that trips the breaker outright (None = never);
    #: saturation is a health signal even before anything fails
    queue_trip_depth: Optional[int] = None
    breaker_window: int = 32
    breaker_failure_threshold: float = 0.5
    breaker_min_samples: int = 8
    breaker_open_s: float = 2.0
    cache_entries: int = 4096
    parallel: bool = True
    max_retries: int = 2
    backoff_base: float = 0.05
    #: seeded anti-thundering-herd spread (see Runner.backoff_jitter)
    backoff_jitter: float = 0.5
    jitter_seed: int = 0
    chaos: Optional[ChaosMonkey] = None


@dataclasses.dataclass
class ServiceStats:
    """The server's own counters (cache/breaker keep theirs)."""

    requests: int = 0
    responses_ok: int = 0
    responses_error: int = 0
    shed: int = 0
    coalesced: int = 0
    deadline_expired: int = 0
    frames_malformed: int = 0
    slow_disconnects: int = 0
    jobs_dispatched: int = 0
    jobs_failed: int = 0


class _Pending:
    """One admitted compute request waiting for (or in) a batch."""

    __slots__ = ("key", "kind", "params", "jobs", "future", "client",
                 "accepted_at", "deadline_s", "cacheable")

    def __init__(self, key: Optional[str], kind: str, params: dict,
                 jobs: List[Job], future: "asyncio.Future", client: str,
                 deadline_s: float, cacheable: bool):
        self.key = key
        self.kind = kind
        self.params = params
        self.jobs = jobs
        self.future = future
        self.client = client
        self.accepted_at = time.monotonic()
        self.deadline_s = deadline_s
        self.cacheable = cacheable


class ServiceServer:
    """The simulation service: see the module docstring for the ladder."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        cfg = self.config
        self.stats = ServiceStats()
        self.cache = ResultCache(max_entries=cfg.cache_entries)
        self.breaker = CircuitBreaker(
            window=cfg.breaker_window,
            failure_threshold=cfg.breaker_failure_threshold,
            min_samples=cfg.breaker_min_samples,
            open_seconds=cfg.breaker_open_s)
        self.admission = AdmissionController(
            TokenBucket(cfg.rate_capacity, cfg.rate_per_s),
            max_inflight_per_client=cfg.max_inflight_per_client,
            max_queue_depth=cfg.max_queue_depth)
        self.runner = Runner(max_workers=cfg.max_workers,
                             max_retries=cfg.max_retries,
                             backoff_base=cfg.backoff_base,
                             backoff_jitter=cfg.backoff_jitter,
                             jitter_seed=cfg.jitter_seed,
                             default_timeout=cfg.job_timeout_s,
                             chaos=cfg.chaos)
        #: request key -> the leader's future (coalescing)
        self._inflight: Dict[str, "asyncio.Future"] = {}
        #: client id -> its FIFO of admitted requests (round-robin)
        self._queues: "OrderedDict[str, Deque[_Pending]]" = OrderedDict()
        self._queued = 0
        self._work = asyncio.Event()
        self._batch_slots: Optional[asyncio.Semaphore] = None
        self._batch_tasks: set = set()
        self._request_tasks: set = set()
        self._dispatcher: Optional[asyncio.Task] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = False
        self._seq = 0

    # ------------------------------------------------------------ lifecycle
    @property
    def port(self) -> int:
        """The bound TCP port (useful with the ephemeral port 0)."""
        if self._server is None:
            return 0
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> None:
        """Bind the listener and start the dispatcher."""
        self._batch_slots = asyncio.Semaphore(self.config.max_batches)
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        logger.info("service listening on %s:%d", self.config.host,
                    self.port)

    async def drain(self) -> None:
        """Graceful shutdown: finish every accepted job, shed the rest.

        New compute requests shed with ``Retry-After`` the moment this
        is called; everything already admitted runs to completion and
        its response is delivered.  This is the SIGTERM path -- the
        chaos campaign asserts it loses no accepted job.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        while self._queued or self._batch_tasks or self._inflight:
            waiting = [future for future in self._inflight.values()
                       if not future.done()]
            if waiting:
                await asyncio.wait(waiting)
            elif self._batch_tasks:
                await asyncio.wait(set(self._batch_tasks))
            else:
                await asyncio.sleep(0.01)
        if self._request_tasks:
            await asyncio.wait(set(self._request_tasks))

    async def close(self) -> None:
        """Stop everything; pairs with :meth:`start`."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
        for task in list(self._batch_tasks) + list(self._request_tasks):
            task.cancel()

    # ------------------------------------------------------------- requests
    async def handle_request(self, payload: Dict[str, object],
                             peer: Optional[object] = None,
                             ) -> Dict[str, object]:
        """The degradation ladder for one request; always returns."""
        started = time.perf_counter()
        self.stats.requests += 1
        request_id = payload.get("id")
        kind = payload.get("kind")
        client = stable_client_id(peer, payload.get("client"))

        def reply(status: str, cache: str = "none",
                  **extra) -> Dict[str, object]:
            elapsed_ms = (time.perf_counter() - started) * 1e3
            response = {"id": request_id, "status": status, "cache": cache,
                        "elapsed_ms": round(elapsed_ms, 6)}
            response.update(extra)
            if status == "ok":
                self.stats.responses_ok += 1
            elif status == "shed":
                self.stats.shed += 1
            else:
                self.stats.responses_error += 1
            return response

        if kind == "ping":
            return reply("ok", result={"pong": True,
                                       "draining": self._draining})
        if kind == "stats":
            return reply("ok", result=self.snapshot())
        params = payload.get("params") or {}
        problem = service_jobs.validate_request(kind, params)
        if problem is not None:
            return reply("bad-request", reason=problem)
        kind = str(kind)
        cacheable = not bool(payload.get("no_cache"))
        key = request_key(kind, params) if cacheable else None

        if key is not None:
            cached = self.cache.get(key)
            if cached is not None:
                return reply("ok", "hit", key=key,
                             result=json.loads(cached.decode()))
            leader = self._inflight.get(key)
            if leader is not None:
                self.stats.coalesced += 1
                shared = await asyncio.shield(leader)
                follower = dict(shared)
                follower["id"] = request_id
                follower["cache"] = "coalesced"
                follower["elapsed_ms"] = round(
                    (time.perf_counter() - started) * 1e3, 6)
                if shared.get("status") == "ok":
                    self.stats.responses_ok += 1
                else:
                    self.stats.responses_error += 1
                return follower

        if self._draining:
            return reply("shed", reason="draining", retry_after_s=1.0)
        if not self.breaker.allow():
            return reply("shed", reason="breaker-open",
                         retry_after_s=round(self.breaker.retry_after_s(),
                                             3))
        verdict = self.admission.admit(client, self._queued)
        if not verdict.allowed:
            return reply("shed", reason=verdict.reason,
                         retry_after_s=round(verdict.retry_after_s, 3))

        deadline_s = float(payload.get("deadline_s")
                           or self.config.default_deadline_s)
        self._seq += 1
        uid = f"req{self._seq}"
        pending = _Pending(
            key=key, kind=kind, params=dict(params),
            jobs=service_jobs.build_jobs(
                kind, dict(params), uid,
                min(deadline_s, self.config.job_timeout_s)),
            future=asyncio.get_running_loop().create_future(),
            client=client, deadline_s=deadline_s, cacheable=cacheable)
        self.admission.start(client)
        if key is not None:
            self._inflight[key] = pending.future
        self._queues.setdefault(client, deque()).append(pending)
        self._queued += 1
        if (self.config.queue_trip_depth is not None
                and self._queued >= self.config.queue_trip_depth):
            self.breaker.trip(f"queue depth {self._queued}")
        self._work.set()
        envelope = await asyncio.shield(pending.future)
        response = dict(envelope)
        response["id"] = request_id
        response["cache"] = "miss"
        response["elapsed_ms"] = round(
            (time.perf_counter() - started) * 1e3, 6)
        if response.get("status") == "ok":
            self.stats.responses_ok += 1
        else:
            self.stats.responses_error += 1
        return response

    # ------------------------------------------------------------ dispatch
    def _take_batch(self) -> List[_Pending]:
        """Round-robin up to ``batch_max`` jobs' worth across clients."""
        batch: List[_Pending] = []
        job_count = 0
        while self._queued and job_count < self.config.batch_max:
            progressed = False
            for client in list(self._queues):
                queue = self._queues[client]
                if not queue:
                    continue
                head = queue[0]
                if batch and job_count + len(head.jobs) > \
                        self.config.batch_max:
                    continue
                queue.popleft()
                self._queued -= 1
                batch.append(head)
                job_count += len(head.jobs)
                progressed = True
                # rotate the client to the back: round-robin fairness
                self._queues.move_to_end(client)
                if job_count >= self.config.batch_max:
                    break
            for client in [c for c, q in self._queues.items() if not q]:
                del self._queues[client]
            if not progressed:
                break
        return batch

    async def _dispatch_loop(self) -> None:
        assert self._batch_slots is not None
        while True:
            if not self._queued:
                self._work.clear()
                await self._work.wait()
            await self._batch_slots.acquire()
            batch = self._take_batch()
            if not batch:
                self._batch_slots.release()
                continue
            task = asyncio.create_task(self._run_batch(batch))
            self._batch_tasks.add(task)
            task.add_done_callback(self._batch_tasks.discard)

    async def _run_batch(self, batch: List[_Pending]) -> None:
        assert self._batch_slots is not None
        try:
            now = time.monotonic()
            live: List[_Pending] = []
            jobs: List[Job] = []
            for pending in batch:
                remaining = (pending.accepted_at + pending.deadline_s
                             - now)
                if remaining <= 0:
                    self.stats.deadline_expired += 1
                    self._settle(pending, {
                        "status": "error", "reason": "deadline",
                        "result": {"error_kind": "deadline",
                                   "error": "deadline expired while "
                                            "queued"}}, ok=False)
                    continue
                timeout = min(remaining, self.config.job_timeout_s)
                pending.jobs = [dataclasses.replace(job, timeout=timeout)
                                for job in pending.jobs]
                live.append(pending)
                jobs.extend(pending.jobs)
            if not jobs:
                return
            self.stats.jobs_dispatched += len(jobs)
            try:
                results = await asyncio.to_thread(
                    self.runner.run, jobs, self.config.parallel)
            except BaseException as exc:    # pool malfunction, not a job
                logger.exception("batch dispatch failed")
                for pending in live:
                    self._settle(pending, {
                        "status": "error", "reason": "pool-failure",
                        "result": {"error_kind": type(exc).__name__,
                                   "error": str(exc)}}, ok=False)
                return
            by_id = {row.job_id: row for row in results}
            for pending in live:
                rows = [by_id[job.id] for job in pending.jobs]
                self._finish(pending, rows)
        finally:
            self._batch_slots.release()

    def _finish(self, pending: _Pending,
                rows: List[JobResult]) -> None:
        """Fold job rows into the response envelope and settle."""
        self.stats.jobs_failed += sum(1 for row in rows if not row.ok)
        result, ok, complete = service_jobs.assemble_result(
            pending.kind, pending.params, rows)
        envelope: Dict[str, object] = {
            "status": "ok" if ok else "error",
            "result": result,
            "attempts": max(row.attempts for row in rows),
        }
        if pending.kind == "sweep" and not complete:
            envelope["incomplete"] = True
        if pending.key is not None:
            envelope["key"] = pending.key
        if ok and complete and pending.cacheable and pending.key is not \
                None:
            # cache the canonical text; a later hit replays these bytes
            payload = self.cache.put_result(pending.key, result)
            envelope["result"] = json.loads(payload.decode())
        self._settle(pending, envelope, ok=ok and complete)

    def _settle(self, pending: _Pending, envelope: Dict[str, object],
                ok: bool) -> None:
        """Deliver one envelope: breaker, admission, coalescers."""
        self.breaker.record(ok)
        self.admission.finish(pending.client)
        if pending.key is not None and \
                self._inflight.get(pending.key) is pending.future:
            del self._inflight[pending.key]
        if not pending.future.done():
            pending.future.set_result(envelope)

    # ---------------------------------------------------------- connections
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername")
        write_lock = asyncio.Lock()
        tasks: set = set()
        try:
            while True:
                try:
                    payload = await read_frame(
                        reader, max_bytes=self.config.max_frame_bytes,
                        timeout=self.config.frame_timeout_s)
                except ProtocolError as exc:
                    self.stats.frames_malformed += 1
                    logger.warning("malformed frame from %s: %s", peer,
                                   exc)
                    try:
                        async with write_lock:
                            await write_frame(writer, {
                                "id": None, "status": "bad-request",
                                "cache": "none", "reason": str(exc)})
                    except (ConnectionError, ProtocolError, OSError):
                        pass
                    break
                except (asyncio.TimeoutError, TimeoutError):
                    self.stats.slow_disconnects += 1
                    logger.warning("slow client %s stalled mid-frame; "
                                   "disconnecting", peer)
                    break
                except (ConnectionError, OSError):
                    break
                if payload is None:
                    break
                task = asyncio.create_task(
                    self._serve_one(payload, peer, writer, write_lock))
                tasks.add(task)
                self._request_tasks.add(task)
                task.add_done_callback(tasks.discard)
                task.add_done_callback(self._request_tasks.discard)
        finally:
            if tasks:
                await asyncio.wait(tasks)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_one(self, payload: Dict[str, object], peer,
                         writer: asyncio.StreamWriter,
                         write_lock: asyncio.Lock) -> None:
        response = await self.handle_request(payload, peer)
        try:
            async with write_lock:
                await write_frame(writer, response)
        except (ConnectionError, OSError):
            pass                      # peer vanished; response is dropped

    # -------------------------------------------------------------- metrics
    def snapshot(self) -> Dict[str, object]:
        """Counters + component stats, JSON-able (the ``stats`` kind)."""
        return {"service": dataclasses.asdict(self.stats),
                "cache": self.cache.stats(),
                "breaker": self.breaker.stats(),
                "queue_depth": self._queued,
                "draining": self._draining}

    def metrics(self, into=None):
        """Harvest into a strict catalogued telemetry registry."""
        from repro.telemetry.metrics import Metrics

        metrics = into or Metrics()
        stats = self.stats
        for name, value in (
                ("service.requests", stats.requests),
                ("service.responses.ok", stats.responses_ok),
                ("service.responses.error", stats.responses_error),
                ("service.shed", stats.shed),
                ("service.cache.coalesced", stats.coalesced),
                ("service.deadline.expired", stats.deadline_expired),
                ("service.frames.malformed", stats.frames_malformed),
                ("service.clients.slow_disconnects",
                 stats.slow_disconnects),
                ("service.jobs.dispatched", stats.jobs_dispatched),
                ("service.jobs.failed", stats.jobs_failed),
                ("service.cache.hits", self.cache.hits),
                ("service.cache.misses", self.cache.misses),
                ("service.cache.integrity_failures",
                 self.cache.integrity_failures),
                ("service.cache.evictions", self.cache.evictions),
                ("service.breaker.opens", self.breaker.opens),
                ("service.breaker.closes", self.breaker.closes)):
            metrics.counter(name).inc(value)
        from repro.service.breaker import STATE_CODES
        metrics.gauge("service.queue.depth").set(self._queued)
        metrics.gauge("service.breaker.state").set(
            STATE_CODES[self.breaker.state])
        metrics.gauge("service.cache.entries").set(len(self.cache))
        return metrics


class ServiceClient:
    """A minimal async client for the frame protocol (CLI, loadgen)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._seq = 0

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._reader = self._writer = None

    async def request(self, kind: str, params: Optional[dict] = None,
                      **extra) -> Dict[str, object]:
        """One request/response exchange (requests are serialized)."""
        if self._writer is None or self._reader is None:
            raise ConnectionError("client is not connected")
        self._seq += 1
        payload = {"id": self._seq, "kind": kind,
                   "params": params or {}}
        payload.update(extra)
        await write_frame(self._writer, payload)
        response = await read_frame(self._reader)
        if response is None:
            raise ConnectionError("server closed the connection")
        return response


async def start_server(config: Optional[ServiceConfig] = None,
                       ) -> ServiceServer:
    """Build and start a server; the caller owns drain/close."""
    server = ServiceServer(config)
    await server.start()
    return server
