"""Admission control: token bucket, per-client bounds, queue cap.

Three independent guards decide whether a request may join the queue:

* a global :class:`TokenBucket` -- sustained request *rate* is bounded
  (bursts up to ``capacity`` are fine, steady state refills at
  ``refill_per_s``);
* a per-client in-flight cap -- one greedy client cannot occupy every
  pool slot, which together with the server's round-robin dispatch is
  what "per-client fairness" means here;
* a global queue-depth cap -- beyond it, queueing adds latency without
  adding throughput, so the honest answer is ``shed`` + ``Retry-After``.

Every rejection carries a machine-readable reason and a retry hint, so
well-behaved clients back off instead of hammering.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, Optional


class TokenBucket:
    """A classic token bucket over an injectable monotonic clock."""

    def __init__(self, capacity: float, refill_per_s: float,
                 clock: Callable[[], float] = time.monotonic):
        if capacity <= 0 or refill_per_s <= 0:
            raise ValueError("capacity and refill_per_s must be positive")
        self.capacity = float(capacity)
        self.refill_per_s = float(refill_per_s)
        self._clock = clock
        self._tokens = float(capacity)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self._tokens = min(self.capacity,
                           self._tokens + elapsed * self.refill_per_s)

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def try_take(self, count: float = 1.0) -> bool:
        """Take ``count`` tokens if available; never blocks."""
        self._refill()
        if self._tokens >= count:
            self._tokens -= count
            return True
        return False

    def seconds_until(self, count: float = 1.0) -> float:
        """Refill time before ``count`` tokens will be available."""
        self._refill()
        deficit = count - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.refill_per_s


@dataclasses.dataclass(frozen=True)
class Admission:
    """The verdict on one request: admitted, or shed with a reason."""

    allowed: bool
    reason: str = ""
    retry_after_s: float = 0.0


class AdmissionController:
    """Combine the three guards into one :meth:`admit` verdict.

    Callers must bracket admitted work with :meth:`start` /
    :meth:`finish` so the per-client in-flight accounting stays honest.
    """

    def __init__(self, bucket: TokenBucket,
                 max_inflight_per_client: int = 8,
                 max_queue_depth: int = 256):
        self.bucket = bucket
        self.max_inflight_per_client = max_inflight_per_client
        self.max_queue_depth = max_queue_depth
        self._inflight: Dict[str, int] = {}

    def inflight(self, client: str) -> int:
        return self._inflight.get(client, 0)

    def admit(self, client: str, queue_depth: int,
              cost: float = 1.0) -> Admission:
        """Check all three guards; sheds name the binding one."""
        if queue_depth >= self.max_queue_depth:
            return Admission(False, "queue-full",
                             max(0.5, self.bucket.seconds_until(cost)))
        if self.inflight(client) >= self.max_inflight_per_client:
            return Admission(False, "client-inflight-limit", 0.5)
        if not self.bucket.try_take(cost):
            return Admission(False, "rate-limited",
                             self.bucket.seconds_until(cost))
        return Admission(True)

    def start(self, client: str) -> None:
        self._inflight[client] = self.inflight(client) + 1

    def finish(self, client: str) -> None:
        count = self.inflight(client) - 1
        if count <= 0:
            self._inflight.pop(client, None)
        else:
            self._inflight[client] = count


def stable_client_id(peer: Optional[object], declared: Optional[str]) -> str:
    """The fairness identity of a connection.

    A client may declare an id in its requests (the load generator and
    chaos campaign do, so fairness is per logical client, not per TCP
    connection); otherwise the peer address serves.
    """
    if declared:
        return str(declared)[:64]
    if peer:
        return str(peer)
    return "anonymous"
