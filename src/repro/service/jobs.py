"""The picklable job points the service dispatches onto the Runner pool.

Every public ``*_point`` function here is importable as
``repro.service.jobs:<name>`` (the Runner's ``fn`` spec), takes only
JSON-able keyword arguments, and returns a JSON-able dict -- that is
what makes responses cacheable as canonical text and byte-identical
between a cold computation and a cache replay.

:func:`build_jobs` maps a validated request ``(kind, params)`` onto
Runner jobs (one job for scalar kinds, one per point for sweeps) and
:func:`assemble_result` folds the finished :class:`JobResult` rows back
into the response ``result`` object, flagging partial sweeps with
``incomplete`` instead of pretending.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.runner import Job, JobResult

#: request kinds the server accepts; "sleep" and "crash" are the chaos
#: campaign's instrumented stand-ins for long and failing jobs
KINDS = ("assemble", "run", "sweep", "trace", "fault", "fuzz",
         "sleep", "crash")

#: sweep experiments and their picklable point functions
SWEEP_POINTS = {
    "icache-organization": "repro.harness.experiments:"
                           "icache_organization_point",
    "ecache-size": "repro.harness.experiments:ecache_size_point",
    "workload-cpi": "repro.harness.experiments:workload_cpi_point",
}

_RUN_CONFIG_FIELDS = ("clock_mhz", "jit", "jit_threshold", "decode_cache",
                      "hazard_check")


def _signature_payload(machine) -> Dict[str, object]:
    """The oracle's full-state signature, JSON-round-tripped.

    The differential oracle compares live Python objects (int-keyed
    memory maps, tuples); a cached response replays *text*, so the
    signature is normalised through JSON once here and both the cold
    and the cached payload carry the identical representation.
    """
    from repro.fuzz.oracle import _machine_signature

    return json.loads(json.dumps(_machine_signature(machine),
                                 sort_keys=True))


def run_point(workload: Optional[str] = None, source: Optional[str] = None,
              max_cycles: int = 2_000_000,
              config: Optional[Dict[str, object]] = None) -> dict:
    """Run one workload (or assembly source) and sign the final state."""
    from repro.core import Machine, MachineConfig
    from repro.asm import assemble
    from repro.workloads import get

    if (workload is None) == (source is None):
        raise ValueError("run wants exactly one of workload= or source=")
    machine_config = MachineConfig()
    for field, value in (config or {}).items():
        if field not in _RUN_CONFIG_FIELDS:
            raise ValueError(f"unsupported config override {field!r}; "
                             f"supported: {_RUN_CONFIG_FIELDS}")
        setattr(machine_config, field, value)
    program = (get(workload).program() if workload is not None
               else assemble(source))
    machine = Machine(machine_config)
    machine.load_program(program)
    machine.run(int(max_cycles))
    return {"workload": workload, "halted": machine.halted,
            "cycles": machine.stats.cycles,
            "retired": machine.stats.retired,
            "console": machine.console.text,
            "signature": _signature_payload(machine)}


def assemble_point(source: str) -> dict:
    """Assemble source text; the image keyed by decimal word address."""
    from repro.asm import assemble

    program = assemble(source)
    return {"entry": program.entry,
            "size": program.size,
            "code_size": program.code_size,
            "symbols": dict(program.symbols),
            "image": {str(address): word
                      for address, word in sorted(program.words())}}


def trace_point(sets: int = 128, ways: int = 1, block_words: int = 4,
                trace_length: int = 20_000) -> dict:
    """One Icache organization over the captured synthetic fetch trace.

    The point runs the replay *twice* over the same captured trace and
    asserts agreement -- the service-level echo of the capture-once/
    replay-many contract the trace store is built on.
    """
    from repro.harness.experiments import icache_organization_point

    first = icache_organization_point(sets, ways, block_words,
                                      trace_length=trace_length)
    second = icache_organization_point(sets, ways, block_words,
                                       trace_length=trace_length)
    if first != second:
        raise RuntimeError(f"trace replay disagreed with itself: "
                           f"{first} != {second}")
    first["replay_agreed"] = True
    return first


def fault_point(seed: int, fault_class: str, max_events: int = 6) -> dict:
    """One differential fault-campaign verdict (see :mod:`repro.faults`)."""
    from repro.faults.campaign import campaign_point

    return campaign_point(int(seed), fault_class, max_events=int(max_events))


def fuzz_check_point(seed: int, mode: str = "isa",
                     quick: bool = True) -> dict:
    """One fuzz verdict; shrinking stays off (interactive latency)."""
    from repro.fuzz.campaign import fuzz_point

    return fuzz_point(int(seed), mode, quick=bool(quick),
                      shrink_failures=False)


def sleep_point(seconds: float) -> dict:
    """Chaos/drain stand-in for a long-running job."""
    time.sleep(float(seconds))
    return {"slept_s": float(seconds)}


def crash_point(message: str = "synthetic failure") -> dict:
    """Chaos stand-in for a job that always fails."""
    raise RuntimeError(message)


_SCALAR_FNS = {
    "assemble": "repro.service.jobs:assemble_point",
    "run": "repro.service.jobs:run_point",
    "trace": "repro.service.jobs:trace_point",
    "fault": "repro.service.jobs:fault_point",
    "fuzz": "repro.service.jobs:fuzz_check_point",
    "sleep": "repro.service.jobs:sleep_point",
    "crash": "repro.service.jobs:crash_point",
}


def validate_request(kind: object, params: object) -> Optional[str]:
    """A human-readable problem string, or ``None`` for a valid request."""
    if kind not in KINDS:
        return f"unknown kind {kind!r}; kinds: {', '.join(KINDS)}"
    if not isinstance(params, dict):
        return f"params must be an object, not {type(params).__name__}"
    if any(not isinstance(key, str) for key in params):
        return "params keys must be strings"
    if kind == "sweep":
        experiment = params.get("experiment")
        if experiment not in SWEEP_POINTS:
            return (f"unknown sweep experiment {experiment!r}; "
                    f"experiments: {', '.join(sorted(SWEEP_POINTS))}")
        points = params.get("points")
        if not isinstance(points, list) or not points:
            return "sweep wants a non-empty 'points' list"
        if any(not isinstance(point, dict) for point in points):
            return "every sweep point must be an object"
    elif kind == "run":
        if ("workload" in params) == ("source" in params):
            return "run wants exactly one of 'workload' or 'source'"
    elif kind == "assemble":
        if not isinstance(params.get("source"), str):
            return "assemble wants a 'source' string"
    elif kind in ("fault", "fuzz"):
        if not isinstance(params.get("seed"), int):
            return f"{kind} wants an integer 'seed'"
        if kind == "fault" and not isinstance(params.get("fault_class"),
                                              str):
            return "fault wants a 'fault_class' string"
    elif kind == "sleep":
        if not isinstance(params.get("seconds"), (int, float)):
            return "sleep wants a 'seconds' number"
    return None


def build_jobs(kind: str, params: Dict[str, object], uid: str,
               timeout: float) -> List[Job]:
    """Map one validated request onto Runner jobs."""
    if kind == "sweep":
        fn = SWEEP_POINTS[str(params["experiment"])]
        return [Job(id=f"{uid}/{index}", fn=fn, params=dict(point),
                    timeout=timeout, sweep=str(params["experiment"]))
                for index, point in enumerate(params["points"])]
    return [Job(id=uid, fn=_SCALAR_FNS[kind], params=dict(params),
                timeout=timeout, sweep=kind)]


def assemble_result(kind: str, params: Dict[str, object],
                    results: Sequence[JobResult],
                    ) -> Tuple[Dict[str, object], bool, bool]:
    """Fold job rows into ``(result, ok, complete)``.

    ``ok`` means the response status is ``ok``; ``complete`` means every
    job finished cleanly, which is what gates cache admission -- a
    partial sweep is served (with ``incomplete: true``) but never
    cached, so a later identical request recomputes the missing points.
    """
    if kind == "sweep":
        points = []
        failures = []
        for row in results:
            if row.ok:
                points.append(row.value)
            else:
                failures.append({"job": row.job_id, "status": row.status,
                                 "error": row.error})
        complete = not failures
        result: Dict[str, object] = {
            "experiment": params["experiment"], "points": points,
            "requested": len(results), "completed": len(points),
            "incomplete": not complete}
        if failures:
            result["failures"] = failures
        return result, bool(points), complete
    (row,) = results
    if row.ok:
        return dict(row.value), True, True
    return ({"job": row.job_id, "status": row.status, "error": row.error,
             "error_kind": row.error_kind}, False, False)
