"""The MIPS-X processor core: pipeline, control, exceptions, configuration."""

from repro.core.config import (
    EcacheConfig,
    IcacheConfig,
    MachineConfig,
    perfect_memory_config,
)
from repro.core.control import CacheMissFsm, MissState, SquashFsm, SquashState
from repro.core.datapath import (
    Alu,
    FunnelShifter,
    MdRegister,
    RegisterFile,
    to_signed,
    to_unsigned,
)
from repro.core.pc_unit import PcChain, PcUnit
from repro.core.pipeline import (
    FaultHook,
    HazardViolation,
    Pipeline,
    PipelineStats,
    TraceSink,
)
from repro.core.processor import Machine, run_assembly, run_program
from repro.core.psw import Psw, PswBit

__all__ = [
    "Alu",
    "CacheMissFsm",
    "EcacheConfig",
    "FaultHook",
    "FunnelShifter",
    "HazardViolation",
    "IcacheConfig",
    "Machine",
    "MachineConfig",
    "MdRegister",
    "MissState",
    "PcChain",
    "PcUnit",
    "Pipeline",
    "PipelineStats",
    "Psw",
    "PswBit",
    "RegisterFile",
    "SquashFsm",
    "SquashState",
    "TraceSink",
    "perfect_memory_config",
    "run_assembly",
    "run_program",
    "to_signed",
    "to_unsigned",
]
