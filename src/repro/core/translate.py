"""Translated fast path: hot inner loops compiled to Python closures.

The interpretive pipeline dispatches every instruction of every cycle
through the full stage machinery.  For the loops that dominate simulated
time this re-derives the same facts -- decode results, bypass routing,
stall-free Icache hits, per-cycle stat increments -- millions of times.
This module is the MIPS-X *reorganizer* philosophy applied to the
simulator itself: move the per-cycle complexity into a one-time software
precomputation and keep the hot path trivial.

**What gets translated.**  Three block shapes, tried in order when a
fetch-discontinuity target gets hot:

* a *straight taken-branch loop*: a contiguous run ``head .. head+N-1``
  whose instruction at ``head+N-3`` is a conditional branch back to
  ``head`` (so its two delay slots are the last two words of the
  block).  While such a loop iterates, the five-stage pipeline is in a
  perfectly periodic regime -- every fetch hits the same Icache lines,
  every bypass resolves the same way, the PC chain and latches cycle
  through the same N states.  The compiler proves the periodic schedule
  once and emits one specialized Python function that replays whole
  iterations, touching only architectural state;
* a *phase-rotated loop*: the same periodic regime entered mid-body (a
  hot branch target that lands after the loop's seam); the PC table
  carries one wrap and the per-cycle formulas rotate with it;
* a *linear one-pass block*: a straight-line run entered at any hot
  fetch discontinuity.  The four in-flight predecessors observed in
  the stage latches at compile time -- their PCs, squash pattern, and
  branch outcomes -- become the entry contract; the body extends to
  the first backward branch plus its two delay slots, and the periodic
  emission machinery degenerates to the non-wrapping case.  Linear
  blocks let translated regions *chain*: a loop's fall-through exit
  re-dispatches into a linear block whose bottom branch enters the
  next loop.

**Exactness contract.**  Translated execution is cycle-exact and
bit-identical to the interpretive pipeline: identical
:class:`~repro.core.pipeline.PipelineStats`, register file, memory,
MD/PSW, Icache and Ecache statistics and LRU state, and identical
pipeline latches at every entry/exit boundary.  Anything the closure
cannot reproduce exactly is either *refused at compile time* (control
transfers other than the backward branch, coprocessor ops, special-PC
reads, unbypassable load-use hazards), *guarded at entry* (wrong mode,
pending interrupts, trace/fault hooks, squash FSM not quiescent, Icache
lines not resident) or *bailed out mid-block at a cycle boundary* (MMIO
access, store into a translated region, branch falling through, cycle
budget).  On every bail the closure materializes the exact latch,
chain, PC and statistics state the interpreter would have had, so the
interpretive pipeline resumes seamlessly.

Store invalidation rides the same ``memory.write_listeners`` path that
already invalidates decode memos: the pipeline's store listener feeds
:meth:`Translator.note_store`, which kills any block whose words are
overwritten (self-modifying code) and raises the ``dirty`` flag that
running closures poll after every store cycle.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Tuple

from repro.core.config import MachineConfig
from repro.core.control import SquashState
from repro.isa.opcodes import Funct, Opcode, SpecialReg

_NORMAL = SquashState.NORMAL
_BRANCH_SQUASH = SquashState.BRANCH_SQUASH

#: Longest run of words the block scanner will walk before giving up.
MAX_BLOCK_WORDS = 64

#: Compute functs the translator can inline (everything here is a pure
#: register-to-register operation with no control or special-state side
#: effects besides MD, which is modelled).
_INLINE_FUNCTS = frozenset({
    Funct.ADD, Funct.SUB, Funct.AND, Funct.OR, Funct.XOR, Funct.NOT,
    Funct.SLL, Funct.SRL, Funct.SRA, Funct.ROTL,
    Funct.MSTEP, Funct.DSTEP, Funct.MOVFRS,
})

#: Special registers a ``movfrs`` may read inside a block.  PC1..PC3
#: would need the chain maintained per cycle, so they refuse the block.
_INLINE_SPECIALS = frozenset({SpecialReg.PSW, SpecialReg.PSWOLD,
                              SpecialReg.MD})

_BRANCH_EXPR = {
    Opcode.BEQ: ("==", False),
    Opcode.BNE: ("!=", False),
    Opcode.BLT: ("<", True),
    Opcode.BLE: ("<=", True),
    Opcode.BGT: (">", True),
    Opcode.BGE: (">=", True),
}

_MASK = 0xFFFFFFFF
_SIGN = 0x80000000


@dataclasses.dataclass
class TranslateStats:
    """Counters for the translated fast path (``core.translate.*``)."""

    compiled: int = 0        #: blocks successfully translated
    rejected: int = 0        #: hot heads refused by the compiler
    entries: int = 0         #: closure activations (guards all passed)
    entry_rejected: int = 0  #: lookups that hit a block but failed a guard
    cycles: int = 0          #: machine cycles executed by closures
    instructions: int = 0    #: instructions retired by closures
    bails: int = 0           #: mid-block exits (MMIO touch / dirty store)
    side_exits: int = 0      #: mid-block exits via a taken side branch
    invalidations: int = 0   #: blocks killed by stores into their words
    evictions: int = 0       #: blocks evicted by the admission bound

    def as_metrics(self) -> Dict[str, int]:
        """Counter values under canonical telemetry catalog names."""
        return {
            "core.translate.blocks.compiled": self.compiled,
            "core.translate.blocks.rejected": self.rejected,
            "core.translate.blocks.invalidated": self.invalidations,
            "core.translate.blocks.evicted": self.evictions,
            "core.translate.entries.taken": self.entries,
            "core.translate.entries.rejected": self.entry_rejected,
            "core.translate.cycles": self.cycles,
            "core.translate.instructions": self.instructions,
            "core.translate.bails": self.bails,
            "core.translate.side_exits": self.side_exits,
        }


class TranslatedBlock:
    """One compiled loop: metadata plus the specialized closure."""

    __slots__ = ("head", "mode", "n", "instrs", "fn", "needs_no_ovf",
                 "max_pass", "lines", "line_segs", "n_segs", "last_used",
                 "passes", "slot3_squashed", "pcs", "linear", "entry_sq",
                 "entry_taken", "entry_fsm_squash")

    def __init__(self, head: int, mode: bool, instrs: tuple, fn,
                 needs_no_ovf: bool, max_pass: int, lines: tuple,
                 line_segs: tuple = (), n_segs: int = 0,
                 slot3_squashed: bool = False, pcs: tuple = (),
                 linear: bool = False, entry_sq: tuple = (),
                 entry_taken: tuple = (), entry_fsm_squash: bool = False):
        self.head = head
        self.mode = mode
        self.n = len(instrs)
        self.instrs = instrs
        #: absolute fetch PC per index.  Straight blocks are contiguous
        #: (``head .. head+n-1``); rotated blocks have one seam where
        #: the original loop branch redirects back over the entry.
        self.pcs = pcs if pcs else tuple(range(head, head + self.n))
        self.fn = fn
        self.needs_no_ovf = needs_no_ovf
        self.max_pass = max_pass
        #: ((set_index, tag, (word_offsets...)), ...) in fetch order --
        #: the Icache lines the block spans, probed once per entry.
        self.lines = lines
        #: aligned with ``lines``: each line's word offsets grouped by
        #: fetch segment (-1 = entry segment, k >= 0 = fetched only
        #: after side branch k falls through).  See ``_segment_lines``.
        self.line_segs = line_segs
        self.n_segs = n_segs
        self.last_used = 0
        self.passes = 0
        #: the instruction at n-4 is an annulled delay slot, so at a
        #: canonical entry the s[3] latch must hold a *squashed* flight.
        self.slot3_squashed = slot3_squashed
        #: one-pass straight-line block: indices 0..3 are the four
        #: *prologue* instructions preceding the entry PC (in the
        #: latches at entry), indices 4.. are the fetched body, and the
        #: body ends at a backward branch plus its two delay slots.
        self.linear = linear
        #: linear only: which of the four prologue flights must be
        #: squashed at entry (annulled slots of a prologue squash
        #: branch that resolved not taken).
        self.entry_sq = entry_sq
        #: linear only: the observed taken outcome of each resolved
        #: prologue branch (indices 0..1; always False elsewhere) --
        #: part of the entry contract, baked into flight
        #: materialization at exit sites.
        self.entry_taken = entry_taken
        #: linear only: the prologue instruction at index 1 is an active
        #: squashing branch that resolved not taken one cycle before
        #: entry, so the squash FSM must be in BRANCH_SQUASH (the
        #: closure emits the clear on its first cycle).
        self.entry_fsm_squash = entry_fsm_squash


def _segment_lines(lines: tuple, n: int, sides: tuple) -> tuple:
    """Group each Icache line's word offsets by fetch segment.

    Segment -1 holds the words fetched unconditionally from a canonical
    entry (up to and including the first side branch's second delay
    slot); segment ``k >= 0`` holds the words only fetched once side
    branch ``k`` has resolved not taken.  ``try_enter`` must prove
    segment -1 resident, while later segments degrade to per-side
    ``seg_ok`` flags the closure checks at that side's fall-through --
    a word in a never-taken path may simply never have been fetched,
    and must not block entry.
    """
    if not lines:
        return ()
    seg_of = [-1] * n
    for ordinal, i in enumerate(sides):
        for w in range(i + 3, n):
            seg_of[w] = ordinal
    out = []
    pos = 0
    for _, _, words in lines:
        groups: List[Tuple[int, List[int]]] = []
        for offset, word in enumerate(words):
            seg_id = seg_of[pos + offset]
            if groups and groups[-1][0] == seg_id:
                groups[-1][1].append(word)
            else:
                groups.append((seg_id, [word]))
        out.append(tuple((seg_id, tuple(ws)) for seg_id, ws in groups))
        pos += len(words)
    return tuple(out)


class Translator:
    """Per-pipeline translation cache, hot-loop detector, and compiler."""

    def __init__(self, pipeline):
        self.pipeline = pipeline
        config = pipeline.config
        self.threshold = max(2, config.jit_threshold)
        self.max_blocks = max(1, config.jit_max_blocks)
        self.stats = TranslateStats()
        #: head -> TranslatedBlock, bounded by ``max_blocks`` (LRU).
        self.blocks: Dict[int, TranslatedBlock] = {}
        #: taken-branch-target counts awaiting the threshold.
        self._counts: Dict[int, int] = {}
        #: heads the compiler refused; never re-scanned until cleared.
        self.dead: set = set()
        #: word address -> [heads] per mode, shared invalidation index.
        self._word_heads: Tuple[dict, dict] = ({}, {})
        #: raised by :meth:`note_store` when a store lands in any
        #: translated region; polled by running closures after every
        #: store cycle, cleared on entry.
        self.dirty = False
        self._clock = 0
        #: bounded span log for the Perfetto "Translated blocks" track;
        #: populated only while ``record_spans`` is on.
        self.record_spans = False
        self.spans: List[dict] = []
        #: wall seconds spent inside :meth:`_compile` (bench telemetry;
        #: not a machine-state quantity, never part of equivalence)
        self.compile_s = 0.0

    # ------------------------------------------------------------ support
    @staticmethod
    def supports(config: MachineConfig) -> bool:
        """Machine shapes the translator can reproduce exactly.

        Two-delay-slot machines only (the 1-slot alternative resolves
        branches in RF), with either a real Icache (in-block fetches are
        proven resident, so they are exact zero-stall hits) or fully
        ideal memory (every fetch and data access is free).
        """
        if config.branch_delay_slots != 2:
            return False
        if config.icache.enabled:
            return True
        return config.icache.miss_cycles == 0 and not config.ecache.enabled

    # ------------------------------------------------------- invalidation
    def note_store(self, address: int, system_mode: bool) -> None:
        """A store committed at ``address``: kill overlapping blocks.

        Driven by the pipeline's single store listener (the same O(1)
        word-address index that invalidates decode memos).  Any running
        closure sees ``dirty`` and bails at the end of the store's MEM
        cycle, before the next fetch could observe the new word.
        """
        heads = self._word_heads[1 if system_mode else 0].get(address)
        if heads:
            self.dirty = True
            for head in list(heads):
                self.invalidate(head)

    def invalidate(self, head: int) -> None:
        """Drop one block and its invalidation-index entries."""
        block = self.blocks.pop(head, None)
        if block is None:
            return
        index = self._word_heads[1 if block.mode else 0]
        for address in block.pcs:
            entry = index.get(address)
            if entry is not None:
                if head in entry:
                    entry.remove(head)
                if not entry:
                    del index[address]
        self.stats.invalidations += 1

    def clear(self) -> None:
        """Forget everything (called on :meth:`Pipeline.reset`: a fresh
        program image is loaded without firing store listeners)."""
        self.blocks.clear()
        self._counts.clear()
        self.dead.clear()
        self._word_heads[0].clear()
        self._word_heads[1].clear()
        self.dirty = False

    # ---------------------------------------------------------- discovery
    def note_target(self, pc: int) -> None:
        """Count a fetch discontinuity landing on ``pc``; compile at the
        threshold.  Untranslatable heads go to the dead set so the
        scanner never re-walks them."""
        counts = self._counts
        count = counts.get(pc, 0) + 1
        if count < self.threshold:
            if len(counts) >= 4096:
                counts.clear()
            counts[pc] = count
            return
        counts.pop(pc, None)
        started = time.perf_counter()
        block = self._compile(pc)
        self.compile_s += time.perf_counter() - started
        if block is None:
            self.stats.rejected += 1
            if len(self.dead) >= 65536:
                self.dead.clear()
            self.dead.add(pc)
            return
        self._admit(block)
        self.stats.compiled += 1

    def _admit(self, block: TranslatedBlock) -> None:
        if len(self.blocks) >= self.max_blocks:
            victim = min(self.blocks.values(), key=lambda b: b.last_used)
            self.invalidate(victim.head)
            self.stats.invalidations -= 1
            self.stats.evictions += 1
        self._clock += 1
        block.last_used = self._clock
        self.blocks[block.head] = block
        index = self._word_heads[1 if block.mode else 0]
        for address in block.pcs:
            index.setdefault(address, []).append(block.head)

    # -------------------------------------------------------------- entry
    def try_enter(self, block: TranslatedBlock, max_cycles: int) -> bool:
        """Run the block's closure if every entry guard holds.

        The canonical entry point is the cycle boundary at which the
        loop branch has just been resolved taken: the latches hold the
        block's last four instructions at known stage ages and the fetch
        PC is back at ``head``.  Everything the closure assumes constant
        is (re)checked here; the Icache ways backing the block are
        gathered for the deferred LRU touches.
        """
        pipe = self.pipeline
        stats = self.stats
        psw = pipe.psw
        n = block.n
        head = block.head
        budget = max_cycles - pipe.stats.cycles
        if (budget < block.max_pass
                or psw.system_mode is not block.mode
                or not psw.shift_enabled
                or (block.needs_no_ovf and psw.trap_on_overflow)
                or pipe.trace is not None
                or pipe.fault_hook is not None
                or pipe._halting or pipe.halted
                or pipe._stall_left != 0
                or pipe._ready_fetch is not None
                or pipe._irq_hold != 0
                or pipe._irq_pending or pipe._nmi_pending
                or pipe.pc_unit._redirect != -1
                or pipe.squash_fsm.state is not (
                    _BRANCH_SQUASH if block.entry_fsm_squash else _NORMAL)
                or pipe.memory.mmu.enabled):
            stats.entry_rejected += 1
            return False
        s = pipe.s
        instrs = block.instrs
        pcs = block.pcs
        if block.linear:
            # One-pass entry: the latches must reproduce the prologue
            # observed at compile time -- the four in-flight
            # predecessors (indices 0..3) with the same PCs, squash
            # pattern and branch outcomes.
            entry_sq = block.entry_sq
            entry_taken = block.entry_taken
            for latch, idx in ((0, 3), (1, 2), (2, 1), (3, 0)):
                flight = s[latch]
                if (flight is None
                        or flight.squashed != entry_sq[idx]
                        or flight.pc != pcs[idx]
                        or not (flight.instr is instrs[idx]
                                or flight.instr == instrs[idx])):
                    stats.entry_rejected += 1
                    return False
            # Prologue branches at 0..1 resolved before entry: their
            # observed outcome is baked into the closure's exit-site
            # flights.  Index 0's memory access already ran its MEM
            # stage; index 1's runs on the first in-block cycle, so it
            # must still be pending and must not touch MMIO space
            # (the closure accesses backing storage directly).
            for latch, idx in ((2, 1), (3, 0)):
                if (not entry_sq[idx]
                        and instrs[idx].opcode in _BRANCH_EXPR
                        and bool(s[latch].taken) != entry_taken[idx]):
                    stats.entry_rejected += 1
                    return False
            if (not entry_sq[0] and instrs[0].is_memory_access
                    and not s[3].mem_resolved):
                stats.entry_rejected += 1
                return False
            if (not entry_sq[1] and instrs[1].is_memory_access
                    and (s[2].mem_resolved
                         or s[2].mem_address >= pipe.config.mmio_base)):
                stats.entry_rejected += 1
                return False
        else:
            for latch, idx in ((0, n - 1), (1, n - 2), (2, n - 3),
                               (3, n - 4)):
                flight = s[latch]
                if (flight is None
                        or flight.squashed != (latch == 3
                                               and block.slot3_squashed)
                        or flight.pc != pcs[idx]
                        or not (flight.instr is instrs[idx]
                                or flight.instr == instrs[idx])):
                    stats.entry_rejected += 1
                    return False
            if not s[2].taken:
                stats.entry_rejected += 1
                return False
            if (not block.slot3_squashed
                    and instrs[n - 4].is_memory_access
                    and not s[3].mem_resolved):
                stats.entry_rejected += 1
                return False
        # Residency: the entry segment (words fetched before the first
        # side branch could redirect) must be fully resident -- those
        # fetches are unconditional.  Words beyond a side branch degrade
        # to per-side ``seg_ok`` flags: the closure bails at that side's
        # fall-through, before the first fetch that could miss, and the
        # interpreter takes the miss with its exact stall timing.
        ways: List[Tuple[int, int]] = []
        seg_ok: List[bool] = [True] * block.n_segs
        if block.lines:
            residency = pipe.icache.residency
            for (index, tag, _), segs in zip(block.lines, block.line_segs):
                hit = residency(index, tag)
                if hit is None:
                    for seg_id, _words in segs:
                        if seg_id < 0:
                            stats.entry_rejected += 1
                            return False
                        seg_ok[seg_id] = False
                    # cold line: never touched (the pass bails before
                    # its first word's fetch cycle)
                    ways.append((index, 0))
                    continue
                way, valid = hit
                for seg_id, seg_words in segs:
                    for word in seg_words:
                        if not valid[word]:
                            if seg_id < 0:
                                stats.entry_rejected += 1
                                return False
                            seg_ok[seg_id] = False
                            break
                ways.append((index, way))
        stats.entries += 1
        self._clock += 1
        block.last_used = self._clock
        self.dirty = False
        if self.record_spans:
            start = pipe.stats.cycles
            before = stats.cycles
            block.fn(budget, ways, seg_ok)
            if len(self.spans) < 65536:
                self.spans.append({
                    "head": head, "n": n, "start_cycle": start,
                    "end_cycle": pipe.stats.cycles,
                    "cycles": stats.cycles - before,
                })
        else:
            block.fn(budget, ways, seg_ok)
        return True

    # ----------------------------------------------------------- compiler
    def _compile(self, head: int) -> Optional[TranslatedBlock]:
        """Scan, prove and code-generate the loop at ``head``; ``None``
        refuses the head (any construct outside the exact-translation
        subset)."""
        pipe = self.pipeline
        config = pipe.config
        mode = pipe.psw.system_mode
        if head + MAX_BLOCK_WORDS + 3 >= config.mmio_base:
            return None
        linear = False
        entry_sq: tuple = ()
        entry_taken: tuple = ()
        shape = self._scan(head, mode)
        if shape is not None:
            instrs, n = shape
            pcs = tuple(range(head, head + n))
            inv_sides: frozenset = frozenset()
        else:
            rotated = self._scan_rotated(head, mode)
            if rotated is not None:
                instrs, pcs, inv_sides = rotated
                n = len(instrs)
            else:
                lshape = self._scan_linear(head, mode)
                if lshape is None:
                    return None
                instrs, pcs, entry_sq, entry_taken = lshape
                n = len(instrs)
                inv_sides = frozenset()
                linear = True
        # Squashing side branches annul their two delay slots on every
        # continuing pass (continuing means not taken, the wrong way for
        # a squash-filled branch).  ``sq_owner`` maps each annulled slot
        # index to its branch.  An annulled branch never resolves, so it
        # annuls nothing itself; increasing order makes that causal.
        # Slots may not reach the loop branch at n-3, and the FSM must
        # be back to NORMAL before the pass boundary: i <= n-6.
        # Inverted sides (rotated blocks) continue on *taken* -- the
        # right way -- so their slots execute and are never annulled.
        # A linear block's prologue carries its own observed annulment
        # pattern (owner -10: squashed before entry, stays squashed).
        sq_owner: Dict[int, int] = {}
        if linear:
            for i, squashed in enumerate(entry_sq):
                if squashed:
                    sq_owner[i] = -10
        for i in range(4 if linear else 0, n - 3):
            if (instrs[i].opcode in _BRANCH_EXPR and instrs[i].squash
                    and i not in sq_owner and i not in inv_sides):
                if i > n - 6:
                    return None
                sq_owner[i + 1] = i
                sq_owner[i + 2] = i
        sources = self._resolve_operands(instrs, n, sq_owner, linear)
        if sources is None:
            return None
        sides = tuple(i for i in range(4 if linear else 0, n - 3)
                      if instrs[i].opcode in _BRANCH_EXPR
                      and i not in sq_owner)
        if linear:
            # only the body (indices 4..) is fetched during the pass
            lines = self._icache_lines(pcs[4:], mode)
            line_segs = _segment_lines(lines, n - 4,
                                       tuple(i - 4 for i in sides))
        else:
            lines = self._icache_lines(pcs, mode)
            line_segs = _segment_lines(lines, n, sides)
        source_text, needs_no_ovf, max_pass = _generate(
            self, head, mode, instrs, n, sources, lines, sq_owner,
            pcs, inv_sides, linear, entry_taken)
        namespace = _exec_namespace(self, mode, instrs)
        code = compile(source_text, f"<translated block {head:#x}>", "exec")
        exec(code, namespace)  # noqa: S102 - self-generated source
        entry_fsm_squash = (linear and instrs[1].opcode in _BRANCH_EXPR
                            and instrs[1].squash and not entry_sq[1]
                            and not entry_taken[1])
        return TranslatedBlock(head, mode, instrs, namespace["_block"],
                               needs_no_ovf, max_pass, lines, line_segs,
                               len(sides), (n - 4) in sq_owner, pcs,
                               linear, entry_sq, entry_taken,
                               entry_fsm_squash)

    def _scan(self, head: int, mode: bool):
        """Find the backward branch and whitelist every instruction.

        Conditional branches *within* the run are admitted as side
        exits: taken means an exact mid-pass exit to their target, not
        taken falls through.  A *squashing* side branch is also exact,
        because a pass only continues past it when it resolved not
        taken -- the wrong way for a squash-filled branch -- so its two
        delay slots are annulled on every continuing pass and compile
        to squashed no-op flights (see ``sq_owner`` in the generator).
        The loop branch's own delay slots still refuse branches -- a
        branch there resolves after the pass boundary.
        """
        pipe = self.pipeline
        decode_at = pipe._decode_at
        instrs = []
        branch_at = -1
        for k in range(MAX_BLOCK_WORDS + 1):
            instr = decode_at(head + k, mode)
            if instr.opcode in _BRANCH_EXPR:
                target = (head + k + instr.imm) & _MASK
                if target == head and k >= 1:
                    branch_at = k
                    instrs.append(instr)
                    break
                instrs.append(instr)  # side exit
                continue
            if not _translatable(instr):
                return None
            instrs.append(instr)
        else:
            return None
        for k in (branch_at + 1, branch_at + 2):  # the two delay slots
            instr = decode_at(head + k, mode)
            if not _translatable(instr):
                return None
            instrs.append(instr)
        return tuple(instrs), branch_at + 3

    def _scan_rotated(self, entry: int, mode: bool):
        """Recognize a *phase-rotated* loop entered at ``entry``.

        A hot side-branch target ``entry`` inside a straight loop
        ``h .. h+N-1`` traces its own periodic cycle: ``entry ..`` tail,
        loop branch taken back to ``h``, head run to a side branch whose
        target is ``entry``, taken back to ``entry``.  In that rotated
        frame the side branch *is* the loop branch (backward to the
        rotated head) and the original loop branch is a polarity-
        inverted side: the pass continues when it is *taken* (the right
        way, so its slots execute and nothing squashes) and exits when
        it falls through.  The instruction sequence is two contiguous
        PC spans with one seam; everything else -- bypass proof, latch
        schedule, stats -- is the same periodic machinery.

        Returns ``(instrs, pcs, inv_sides)`` or ``None``.
        """
        decode_at = self.pipeline._decode_at
        instrs: List = []
        pcs: List[int] = []
        loop_at = -1
        loop_target = -1
        for k in range(MAX_BLOCK_WORDS + 1):
            instr = decode_at(entry + k, mode)
            if instr.opcode in _BRANCH_EXPR:
                target = (entry + k + instr.imm) & _MASK
                if target < entry:   # the original loop branch
                    loop_at = k
                    loop_target = target
                    instrs.append(instr)
                    pcs.append(entry + k)
                    break
                instrs.append(instr)  # side exit (any other target)
                pcs.append(entry + k)
                continue
            if not _translatable(instr):
                return None
            instrs.append(instr)
            pcs.append(entry + k)
        else:
            return None
        for k in (loop_at + 1, loop_at + 2):  # its two delay slots
            instr = decode_at(entry + k, mode)
            if not _translatable(instr):
                return None
            instrs.append(instr)
            pcs.append(entry + k)
        inv_idx = loop_at
        # head run: loop_target .. the side branch taken back to entry,
        # plus that branch's two delay slots -- all strictly below entry
        h = loop_target
        k2 = 0
        while h + k2 + 2 < entry and len(instrs) < MAX_BLOCK_WORDS + 3:
            pc = h + k2
            instr = decode_at(pc, mode)
            if instr.opcode in _BRANCH_EXPR:
                target = (pc + instr.imm) & _MASK
                if target == entry:   # the rotated loop branch
                    instrs.append(instr)
                    pcs.append(pc)
                    for spc in (pc + 1, pc + 2):
                        slot = decode_at(spc, mode)
                        if not _translatable(slot):
                            return None
                        instrs.append(slot)
                        pcs.append(spc)
                    if len(instrs) > MAX_BLOCK_WORDS + 3:
                        return None
                    return tuple(instrs), tuple(pcs), frozenset({inv_idx})
                if target <= pc:
                    return None   # unrelated backward branch: refuse
                instrs.append(instr)  # side exit
                pcs.append(pc)
                k2 += 1
                continue
            if not _translatable(instr):
                return None
            instrs.append(instr)
            pcs.append(pc)
            k2 += 1
        return None

    def _scan_linear(self, entry: int, mode: bool):
        """Recognize a hot *straight-line run*: ``entry`` is a fetch
        discontinuity target (a block's fall-through exit or a taken
        branch's landing) whose body runs forward to the first backward
        branch plus its two delay slots.  The block executes exactly one
        pass per entry and then redirects wherever the bottom branch
        decides -- chaining into the loop blocks on either side.

        The four in-flight predecessors observed in the latches *right
        now* (``note_target`` compiles at a live arrival) become the
        *prologue*, indices 0..3: their PCs, squash pattern and branch
        outcomes are baked into the entry contract, their writebacks --
        and, for index 1, the MEM stage -- retire during the first pass
        cycles, and their results seed the body's bypass proof from the
        latches.  Arrivals that do not reproduce the observed pattern
        are rejected at entry and stay interpreted; hot targets have a
        dominant arrival path, so the observed instance is the one that
        pays.

        Returns ``(instrs, pcs, entry_sq, entry_taken)`` over the
        combined prologue+body sequence, or ``None``.
        """
        pipe = self.pipeline
        s = pipe.s
        if s[0] is None or s[1] is None or s[2] is None or s[3] is None:
            return None
        mmio_base = pipe.config.mmio_base
        decode_at = pipe._decode_at
        instrs: List = []
        pcs: List[int] = []
        entry_sq: List[bool] = []
        entry_taken: List[bool] = []
        for flight in (s[3], s[2], s[1], s[0]):
            pc = flight.pc
            if pc < 0 or pc + 1 >= mmio_base:
                return None
            instr = decode_at(pc, mode)
            squashed = flight.squashed
            if instr.opcode in _BRANCH_EXPR:
                # indices 2..3 resolve mid-pass: only annulled ones are
                # static; indices 0..1 resolved pre-entry either way
                if len(instrs) >= 2 and not squashed:
                    return None
            elif not _translatable(instr):
                return None
            instrs.append(instr)
            pcs.append(pc)
            entry_sq.append(squashed)
            entry_taken.append(bool(flight.taken) and not squashed)
        bottom_at = -1
        for k in range(MAX_BLOCK_WORDS + 1):
            instr = decode_at(entry + k, mode)
            if instr.opcode in _BRANCH_EXPR:
                target = (entry + k + instr.imm) & _MASK
                if target <= entry + k:   # backward: the terminator
                    bottom_at = k
                    instrs.append(instr)
                    pcs.append(entry + k)
                    break
                instrs.append(instr)  # forward side exit
                pcs.append(entry + k)
                continue
            if not _translatable(instr):
                return None
            instrs.append(instr)
            pcs.append(entry + k)
        else:
            return None
        for k in (bottom_at + 1, bottom_at + 2):  # its two delay slots
            instr = decode_at(entry + k, mode)
            if not _translatable(instr):
                return None
            instrs.append(instr)
            pcs.append(entry + k)
        return (tuple(instrs), tuple(pcs),
                tuple(entry_sq), tuple(entry_taken))

    def _resolve_operands(self, instrs: tuple, n: int, sq_owner: dict,
                          linear: bool = False):
        """Static bypass routing: map every register read of every
        instruction to a producer local, a loop-invariant binding, or a
        literal zero -- or refuse on an unbypassable load-use pair.
        Annulled slots (``sq_owner`` keys) neither read nor produce:
        the interpreter's bypass skips squashed flights the same way.
        Linear blocks walk producers backward without wrapping (one
        pass, no previous iteration) and skip prologue indices 0..1 as
        consumers -- their reads resolved before entry; their latched
        results still serve as producers."""
        sources: List[dict] = []
        invariants = set()
        for idx, instr in enumerate(instrs):
            resolved = {}
            if idx in sq_owner or (linear and idx < 2):
                sources.append(resolved)
                continue
            for slot, reg in _operand_slots(instr):
                if reg == 0:
                    resolved[slot] = "0"
                    continue
                expr = None
                for distance in range(1, (idx + 1) if linear else (n + 1)):
                    p = idx - distance if linear else (idx - distance) % n
                    if p in sq_owner:
                        continue
                    if instrs[p].writes_register() == reg:
                        if distance == 1 and instrs[p].opcode == Opcode.LD:
                            return None  # load-use: interpreter territory
                        expr = f"v{p}"
                        break
                if expr is None:
                    expr = f"rr{reg}"
                    invariants.add(reg)
                resolved[slot] = expr
            sources.append(resolved)
        return sources, invariants

    def _icache_lines(self, pcs: tuple, mode: bool) -> tuple:
        """The (set, tag, word-offsets) triples the block's fetches span,
        in fetch order, for entry-time residency probes and deferred
        LRU touches.  A rotated block's seam may split (or even repeat)
        a line; repeats are harmless -- probes and touches follow fetch
        order exactly.  Empty when the Icache is disabled."""
        icache = self.pipeline.icache
        if not self.pipeline.config.icache.enabled:
            return ()
        lines: List[Tuple[int, int, List[int]]] = []
        for pc in pcs:
            index, tag, word = icache.locate(pc, mode)
            if lines and lines[-1][0] == index and lines[-1][1] == tag:
                lines[-1][2].append(word)
            else:
                lines.append((index, tag, [word]))
        return tuple((index, tag, tuple(words))
                     for index, tag, words in lines)


def _translatable(instr) -> bool:
    """Inlineable straight-line instruction (no control, no coproc)."""
    op = instr.opcode
    if op in (Opcode.LD, Opcode.ST, Opcode.ADDI):
        return True
    if op != Opcode.COMPUTE:
        return False
    funct = instr.funct
    if funct not in _INLINE_FUNCTS:
        return False
    if funct == Funct.MOVFRS:
        try:
            return SpecialReg(instr.shamt) in _INLINE_SPECIALS
        except ValueError:
            return False
    return True


def _operand_slots(instr):
    """(slot_name, register) pairs the ALU stage reads for ``instr``."""
    op = instr.opcode
    if op == Opcode.COMPUTE:
        funct = instr.funct
        if funct in (Funct.SLL, Funct.SRL, Funct.SRA, Funct.ROTL,
                     Funct.NOT):
            return (("a", instr.src1),)
        if funct == Funct.MOVFRS:
            return ()
        return (("a", instr.src1), ("b", instr.src2))
    if op in (Opcode.LD, Opcode.ADDI):
        return (("a", instr.src1),)
    if op == Opcode.ST:
        return (("a", instr.src1), ("b", instr.src2))
    # branch
    return (("a", instr.src1), ("b", instr.src2))


def _exec_namespace(translator: Translator, mode: bool,
                    instrs: tuple) -> dict:
    """Globals for one block's generated function: everything stable
    over the pipeline's lifetime is pre-bound here, so the closure does
    no attribute walks on its hot path."""
    pipe = translator.pipeline
    from repro.core.pipeline import Flight  # local: avoid import cycle
    return {
        "__builtins__": {},
        "P": pipe,
        "F": Flight,
        "I": instrs,
        "ST": pipe.stats,
        "IST": pipe.icache.stats,
        "TS": translator.stats,
        "TR": translator,
        "ECR": pipe.ecache.read,
        "ECW": pipe.ecache.write,
        "MW": pipe.memory.write,
        "SP": pipe.memory.space(mode),
        "MD": pipe.md,
        "CH": pipe.pc_unit.chain.shift,
        "SFS": pipe.squash_fsm.step,
        "REGS": pipe.regs,
        "TCH": pipe.icache.bulk_touch,
    }


# ---------------------------------------------------------------- codegen
class _Emitter:
    """Tiny indented-source builder."""

    def __init__(self):
        self.lines: List[str] = []
        self.depth = 0

    def emit(self, text: str) -> None:
        self.lines.append("    " * self.depth + text)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _alu_expr(instr, src: dict) -> Optional[str]:
    """Inline expression for a compute/addi result, or ``None`` when the
    operation needs statements (mstep/dstep) handled by the caller."""
    funct = instr.funct
    a = src.get("a")
    b = src.get("b")
    if funct == Funct.ADD:
        return f"({a} + {b}) & {_MASK}"
    if funct == Funct.SUB:
        return f"({a} - {b}) & {_MASK}"
    if funct == Funct.AND:
        return f"{a} & {b}"
    if funct == Funct.OR:
        return f"{a} | {b}"
    if funct == Funct.XOR:
        return f"{a} ^ {b}"
    if funct == Funct.NOT:
        return f"~{a} & {_MASK}"
    shamt = instr.shamt
    if funct == Funct.SLL:
        return f"({a} << {shamt}) & {_MASK}" if shamt else f"{a}"
    if funct == Funct.SRL:
        return f"{a} >> {shamt}" if shamt else f"{a}"
    if funct == Funct.SRA:
        if not shamt:
            return f"{a}"
        return (f"((({a} - {1 << 32}) >> {shamt}) & {_MASK}) "
                f"if {a} & {_SIGN} else ({a} >> {shamt})")
    if funct == Funct.ROTL:
        if not shamt:
            return f"{a}"
        return f"(({a} << {shamt}) | ({a} >> {32 - shamt})) & {_MASK}"
    if funct == Funct.MOVFRS:
        special = SpecialReg(instr.shamt)
        if special == SpecialReg.PSW:
            return "_psw"
        if special == SpecialReg.PSWOLD:
            return "_pswold"
        return "MD.value"
    return None


def _generate(translator: Translator, head: int, mode: bool, instrs: tuple,
              n: int, sources, lines: tuple, sq_owner: Dict[int, int],
              pcs: tuple, inv_sides: frozenset, linear: bool = False,
              entry_taken: tuple = ()):  # noqa: C901
    """Emit the block's specialized function source.

    The emitted per-pass body replays the interpreter's exact event
    order for cycles ``0..n-1`` of one loop iteration: Ecache probe for
    the op entering MEM, (implicit always-hit) fetch, writeback,
    MEM work, ALU work, with the loop branch resolved in cycle ``n-1``.
    Exits and bails materialize end-of-cycle machine state.
    ``sq_owner`` slots are annulled on every continuing pass: they are
    fetched and occupy latch slots but do no work and retire nothing.
    ``pcs`` maps index to absolute fetch PC (rotated blocks have one
    seam); ``inv_sides`` are polarity-inverted sides (the original loop
    branch of a rotated block): the pass continues when they are taken.

    ``linear`` blocks run the same schedule for exactly one pass over a
    combined prologue+body sequence: indices 0..3 are already in flight
    at entry (their latched results seed the locals; ``entry_taken``
    records prologue branch outcomes), the per-cycle emission covers
    cycles ``4..n-1`` -- over which every ``(cycle - k) % n`` formula
    degenerates to its non-wrapping form -- and the bottom backward
    branch redirects out at cycle ``n-1`` instead of looping.
    """
    pipe = translator.pipeline
    config = pipe.config
    per_site, invariants = sources
    ecache_on = config.ecache.enabled
    icache_on = config.icache.enabled
    lru = icache_on and config.icache.replacement == "lru"
    mode_lit = "True" if mode else "False"
    mmio_base = config.mmio_base
    sq_set = frozenset(sq_owner)
    n_sq = len(sq_set)
    n_retired = n - n_sq

    writers = {}           # idx -> dest register
    for idx, instr in enumerate(instrs):
        dest = instr.writes_register()
        if dest is not None and idx not in sq_set:
            writers[idx] = dest
    carries_result = {idx for idx, instr in enumerate(instrs)
                      if instr.opcode in (Opcode.COMPUTE, Opcode.ADDI,
                                          Opcode.LD) and idx not in sq_set}
    mem_ops = {idx for idx, instr in enumerate(instrs)
               if instr.opcode in (Opcode.LD, Opcode.ST)
               and idx not in sq_set}
    noop_idx = {idx for idx, instr in enumerate(instrs)
                if instr.is_nop and idx not in sq_set}
    ld_count = sum(1 for idx in mem_ops if instrs[idx].opcode == Opcode.LD)
    st_count = len(mem_ops) - ld_count
    # linear prologue indices 0..1 ran their ALU before entry: any
    # overflow trap already happened (or not) under interpretation
    needs_no_ovf = any(
        instrs[idx].opcode == Opcode.COMPUTE
        and instrs[idx].funct in (Funct.ADD, Funct.SUB, Funct.MSTEP)
        for idx in range((2 if linear else 0), n) if idx not in sq_set)
    max_pass = (n - 4 if linear else n) + (
        len(mem_ops) * config.ecache.miss_penalty if ecache_on else 0)

    # distinct-line prefix counts for the deferred LRU touches
    line_prefix = [0] * n
    if lines:
        seen = 0
        boundaries = []
        offset = 0
        for _, _, words in lines:
            boundaries.append(offset)
            offset += len(words)
        for cycle in range(n):
            # linear lines cover only the body: fetch cycle c pulls
            # combined index c = body word c-4
            while seen < len(boundaries) and boundaries[seen] <= (
                    cycle - 4 if linear else cycle):
                seen += 1
            line_prefix[cycle] = seen
    total_lines = len(lines)

    branch = instrs[n - 3]
    #: every in-run conditional branch resolved mid-pass, in index
    #: order; segment ordinals for the residency flags index this.
    #: Linear prologue branches (indices < 4) resolved before entry and
    #: were already counted by the interpreter -- excluded throughout.
    all_sides = tuple(i for i in range(4 if linear else 0, n - 3)
                      if instrs[i].opcode in _BRANCH_EXPR
                      and i not in sq_set)
    #: normal sides: taken -> exact exit to their target, not-taken ->
    #: fall through.  Annulled branches never resolve and are not here.
    side_branches = tuple(i for i in all_sides if i not in inv_sides)
    #: active squashing sides: continuing past one is the wrong way, so
    #: the squash FSM pulses BRANCH_SQUASH for the following cycle.
    squashing_sides = tuple(i for i in side_branches if instrs[i].squash)
    sfs_clear_cycles = {i + 3 for i in squashing_sides}
    if (linear and instrs[1].opcode in _BRANCH_EXPR and instrs[1].squash
            and 1 not in sq_set and not entry_taken[1]):
        # entered one cycle after prologue index 1 squashed the wrong
        # way: the FSM is in BRANCH_SQUASH at entry and falls back to
        # NORMAL at the end of the first in-block cycle
        sfs_clear_cycles.add(4)
    branches_per_pass = 1 + len(all_sides)
    #: taken branches per completed pass: the loop branch plus every
    #: inverted side (which is taken on the continuing path).
    taken_per_pass = 1 + len(inv_sides)

    def sides_resolved_by(cycle: int) -> int:
        """Side branches whose ALU resolution is at or before ``cycle``."""
        return sum(1 for i in all_sides if i + 2 <= cycle)

    def taken_resolved_by(cycle: int) -> int:
        """Inverted sides resolved (taken) at or before ``cycle``."""
        return sum(1 for i in inv_sides if i + 2 <= cycle)

    out = _Emitter()
    emit = out.emit
    emit("def _block(bud, ws, sok):")
    out.depth += 1
    emit("R = REGS._regs")
    emit("MG = SP._words.get")
    # Per-side segment-residency flags: a False flag means the words
    # past that side's fall-through were not all Icache-resident at
    # entry, so the pass must bail there (the interpreter then takes
    # the miss with exact stall timing).  Fixed for the whole
    # activation: in-block fetches hit and cannot evict anything.
    if icache_on and total_lines:
        for ordinal in range(len(all_sides)):
            emit(f"sk{ordinal} = sok[{ordinal}]")
    if any(instrs[idx].opcode == Opcode.COMPUTE
           and instrs[idx].funct == Funct.MOVFRS
           and SpecialReg(instrs[idx].shamt) == SpecialReg.PSW
           for idx in range(n)):
        emit("_psw = P.psw.value")
    if any(instrs[idx].opcode == Opcode.COMPUTE
           and instrs[idx].funct == Funct.MOVFRS
           and SpecialReg(instrs[idx].shamt) == SpecialReg.PSWOLD
           for idx in range(n)):
        emit("_pswold = P.psw_old.value")
    for reg in sorted(invariants):
        emit(f"rr{reg} = R[{reg}]")
    # Seeds: locals that can be read (as operands or in bail-site flight
    # materializations) before their first in-pass assignment.  w locals
    # hold each writer's last *written-back* value; at entry that is by
    # definition the register-file content.
    if linear:
        # one pass only: w locals are always assigned at their WB cycle
        # before any site reads them, so only the prologue's latched
        # results need seeding (an in-flight load's value arrives via
        # its in-pass MEM stage instead)
        if 0 in carries_result:
            emit("v0 = P.s[3].result")
        if 0 in mem_ops:
            emit("a0 = P.s[3].mem_address")
            if instrs[0].opcode == Opcode.ST:
                emit("sv0 = P.s[3].store_value")
        if 1 in carries_result and instrs[1].opcode != Opcode.LD:
            emit("v1 = P.s[2].result")
        if 1 in mem_ops:
            emit("a1 = P.s[2].mem_address")
            if instrs[1].opcode == Opcode.ST:
                emit("sv1 = P.s[2].store_value")
    else:
        for idx in sorted(writers):
            emit(f"w{idx} = R[{writers[idx]}]")
            if idx != n - 4:
                emit(f"v{idx} = w{idx}")
        if (n - 4) in carries_result:
            emit("v%d = P.s[3].result" % (n - 4))
        for idx in sorted(carries_result - set(writers)):
            if idx != n - 4:
                emit(f"v{idx} = 0")
        if (n - 4) in mem_ops:
            emit("a%d = P.s[3].mem_address" % (n - 4))
            if instrs[n - 4].opcode == Opcode.ST:
                emit("sv%d = P.s[3].store_value" % (n - 4))
    emit("pen = 0")
    emit("it = 0")
    if not linear:
        emit("while True:")
        out.depth += 1

    def emit_flight(var: str, idx: int, age: int,
                    side_taken: bool = False,
                    squashed: bool = False) -> None:
        """Materialize the idx-instance at stage-age ``age`` (stages
        completed) exactly as the interpreter would have left it."""
        instr = instrs[idx]
        emit(f"{var} = F({pcs[idx]}, I[{idx}])")
        if squashed:
            # annulled in IF/RF: no stage ever computed a field
            emit(f"{var}.squashed = True")
            return
        if age < 2:
            return
        op = instr.opcode
        if op in _BRANCH_EXPR:
            # The loop branch and inverted sides are taken at every
            # resolution a pass sees (their not-taken is the "exit" /
            # "iexit" site, which overwrites f2); a normal side resolved
            # in-pass was *not* taken -- except at its own taken-exit
            # site, flagged by the caller.  A linear prologue branch
            # resolved before entry keeps its observed outcome.
            if (idx == n - 3 or idx in inv_sides or side_taken
                    or (linear and idx < 2 and entry_taken[idx])):
                emit(f"{var}.taken = True")
            return
        if op == Opcode.LD:
            emit(f"{var}.mem_address = a{idx}")
            if writers.get(idx) is not None:
                emit(f"{var}.dest = {writers[idx]}")
            if age >= 3:
                emit(f"{var}.result = v{idx}")
                emit(f"{var}.mem_resolved = True")
            return
        if op == Opcode.ST:
            emit(f"{var}.mem_address = a{idx}")
            emit(f"{var}.store_value = sv{idx}")
            if age >= 3:
                emit(f"{var}.mem_resolved = True")
            return
        if op == Opcode.ADDI:
            emit(f"{var}.mem_address = v{idx}")
        if idx in carries_result:
            if writers.get(idx) is not None:
                emit(f"{var}.dest = {writers[idx]}")
            emit(f"{var}.result = v{idx}")

    def emit_commits(cycle: int) -> None:
        """Register-file commits at an end-of-cycle ``cycle`` site: for
        each written register, the writer with the most recent WB.
        Linear passes only commit writers whose WB cycle has been
        reached; earlier registers still hold their entry values."""
        by_reg: Dict[int, int] = {}
        for idx, reg in writers.items():
            if linear:
                if idx + 4 > cycle:
                    continue
                best = by_reg.get(reg)
                if best is None or idx > best:
                    by_reg[reg] = idx
            else:
                age = (cycle - (idx + 4)) % n
                best = by_reg.get(reg)
                if best is None or age < (cycle - (best + 4)) % n:
                    by_reg[reg] = idx
        for reg in sorted(by_reg):
            emit(f"R[{reg}] = w{by_reg[reg]}")

    def emit_site(cycle: int, kind: str, side_idx: int = -1) -> None:
        """One exit site at the end of emitted-pass cycle ``cycle``.

        ``kind``: "bail" (MMIO/dirty/cold-segment mid-pass), "side"
        (the normal side branch at ``side_idx`` resolved taken; exit to
        its target), "iexit" (the inverted side at ``side_idx`` fell
        through; exit past its delay slots, wrong-way squash applied
        when it has the squash bit), "exit" (loop branch not taken;
        likewise wrong-way), "ltaken" (a linear block's bottom branch
        taken: redirect to its target), "canonical" (pass boundary:
        budget exhausted or dirty store in the final MEM slot).
        """
        mid_pass = kind in ("bail", "side", "iexit")
        if linear:
            # exactly one partial pass over cycles 4..cycle (it == 0);
            # WBs retire combined indices 0..cycle-4
            cycles_c = cycle - 3
            sq_c = sum(1 for j in range(4, cycle + 1) if j - 4 in sq_set)
            retired_c = cycles_c - sq_c
        elif mid_pass:
            cycles_c = cycle + 1
            sq_c = sum(1 for j in range(cycle + 1)
                       if (j - 4) % n in sq_set)
            retired_c = cycles_c - sq_c
        else:
            cycles_c = 0 if kind == "canonical" else n
            sq_c = n_sq if kind == "exit" else 0
            retired_c = n_retired if kind == "exit" else 0
        # pipeline statistics: it complete taken passes + this partial
        emit(f"ST.cycles += it * {n} + {cycles_c} + pen")
        emit(f"ST.fetched += it * {n} + {cycles_c}")
        emit(f"ST.retired += it * {n_retired} + {retired_c}")
        if n_sq:
            emit(f"ST.squashed += it * {n_sq} + {sq_c}")
        if noop_idx:
            if linear:
                partial_noops = sum(
                    1 for j in range(4, cycle + 1) if j - 4 in noop_idx)
            elif mid_pass:
                partial_noops = sum(
                    1 for j in range(cycle + 1) if (j - 4) % n in noop_idx)
            else:
                partial_noops = len(noop_idx) if kind == "exit" else 0
            emit(f"ST.noops += it * {len(noop_idx)} + {partial_noops}")
        if kind == "exit":
            branch_c = branches_per_pass
            taken_c = len(inv_sides)
        elif kind == "ltaken":
            branch_c = branches_per_pass
            taken_c = 1
        elif kind == "canonical":
            branch_c = 0
            taken_c = 0
        else:
            branch_c = sides_resolved_by(cycle)
            taken_c = taken_resolved_by(cycle)
            if kind == "side":
                taken_c += 1   # this normal side resolved taken
            elif kind == "iexit":
                taken_c -= 1   # this inverted side resolved not taken
        it_branches = (f"it * {branches_per_pass}"
                       if branches_per_pass != 1 else "it")
        it_taken = (f"it * {taken_per_pass}"
                    if taken_per_pass != 1 else "it")
        emit(f"ST.branches += {it_branches} + {branch_c}")
        emit(f"ST.branches_taken += {it_taken} + {taken_c}")
        if ld_count or st_count:
            if linear:
                # MEM cycles 4..cycle retire combined indices 1..cycle-3
                # (index 0's MEM stage completed before entry and was
                # counted under interpretation)
                part_ld = sum(1 for j in range(4, cycle + 1)
                              if j - 3 in mem_ops
                              and instrs[j - 3].opcode == Opcode.LD)
                part_st = sum(1 for j in range(4, cycle + 1)
                              if j - 3 in mem_ops
                              and instrs[j - 3].opcode == Opcode.ST)
            elif mid_pass:
                part_ld = sum(1 for j in range(cycle + 1)
                              if (j - 3) % n in mem_ops
                              and instrs[(j - 3) % n].opcode == Opcode.LD)
                part_st = sum(1 for j in range(cycle + 1)
                              if (j - 3) % n in mem_ops
                              and instrs[(j - 3) % n].opcode == Opcode.ST)
            else:
                part_ld = ld_count if kind == "exit" else 0
                part_st = st_count if kind == "exit" else 0
            if ld_count or part_ld:
                emit(f"ST.loads += it * {ld_count} + {part_ld}")
            if st_count or part_st:
                emit(f"ST.stores += it * {st_count} + {part_st}")
        emit("ST.data_stall_cycles += pen")
        if icache_on:
            emit(f"IST.accesses += it * {n} + {cycles_c}")
        emit(f"TS.cycles += it * {n} + {cycles_c} + pen")
        emit(f"TS.instructions += it * {n_retired} + {retired_c}")
        if kind == "bail":
            emit("TS.bails += 1")
        elif kind == "side":
            emit("TS.side_exits += 1")
        # deferred Icache LRU reordering
        if lru and total_lines:
            if not mid_pass:
                emit(f"TCH(ws, {total_lines})")
            else:
                emit("if it:")
                out.depth += 1
                emit(f"TCH(ws, {total_lines})")
                out.depth -= 1
                prefix = line_prefix[cycle]
                if prefix:
                    emit(f"TCH(ws, {prefix})")
        # latches: end of ``cycle``, s[k] holds idx (cycle-k) mod n at
        # stage-age k
        wrong_way = (kind == "exit" and branch.squash) or (
            kind == "iexit" and instrs[side_idx].squash)
        for k in range(5):
            idx = (cycle - k) % n
            owner = sq_owner.get(idx)
            if owner is None:
                sq = False
            elif k > cycle:
                sq = True   # previous-pass instance: that pass continued
            else:
                # same pass: annulled once its branch resolved not taken
                sq = (cycle > owner + 2
                      or (cycle == owner + 2
                          and not (kind == "side" and side_idx == owner)))
            emit_flight(f"f{k}", idx, k, kind == "side" and k == 2, sq)
        if wrong_way:
            emit("f0.squashed = True")
            emit("f1.squashed = True")
        if kind in ("exit", "iexit"):
            emit("f2.taken = False")  # overwrite the age>=2 default
        emit("P.s = [f0, f1, f2, f3, f4]")
        emit_commits(cycle)
        emit(f"CH({pcs[(cycle - 3) % n]}, {pcs[(cycle - 2) % n]}, "
             f"{pcs[(cycle - 1) % n]})")
        if kind == "bail":
            emit(f"P.pc_unit.fetch_pc = {pcs[cycle + 1]}")
        elif kind in ("side", "ltaken"):
            target = (pcs[side_idx] + instrs[side_idx].imm) & _MASK
            emit(f"P.pc_unit.fetch_pc = {target}")
        elif kind == "iexit":
            emit(f"P.pc_unit.fetch_pc = {pcs[side_idx] + 3}")
        elif kind == "exit":
            emit(f"P.pc_unit.fetch_pc = {pcs[n - 1] + 1}")
        else:
            emit(f"P.pc_unit.fetch_pc = {pcs[0]}")
        if wrong_way:
            emit("ST.branch_squashes += 1")
            emit("SFS(False, True)")
        emit("return")

    def emit_branch_cond(idx: int) -> str:
        """Emit operand prep for the branch at ``idx`` and return its
        taken-condition expression."""
        cmp_op, signed = _BRANCH_EXPR[instrs[idx].opcode]
        src = per_site[idx]
        a_expr, b_expr = src["a"], src["b"]
        if not signed:
            return f"{a_expr} {cmp_op} {b_expr}"
        emit(f"_ba = {a_expr}")
        emit(f"_bb = {b_expr}")
        emit(f"_ba = _ba - {1 << 32} if _ba & {_SIGN} else _ba")
        emit(f"_bb = _bb - {1 << 32} if _bb & {_SIGN} else _bb")
        return f"_ba {cmp_op} _bb"

    # ------------------------------------------------- per-cycle emission
    for cycle in range(4 if linear else 0, n):
        probe_idx = (cycle - 3) % n
        wb_idx = (cycle - 4) % n
        alu_idx = (cycle - 2) % n
        emit(f"# cycle {cycle}: fetch {pcs[cycle]:#x} | wb i{wb_idx} "
             f"| mem i{probe_idx} | alu i{alu_idx}")
        bail_conditions = []
        # MEM-entry Ecache probe (late-miss protocol timing)
        if probe_idx in mem_ops and ecache_on:
            fn = "ECR" if instrs[probe_idx].opcode == Opcode.LD else "ECW"
            emit(f"pen += {fn}(a{probe_idx}, {mode_lit})")
        # WB: commit the writer's value into its w local
        if wb_idx in writers:
            emit(f"w{wb_idx} = v{wb_idx}")
        # MEM work
        if probe_idx in mem_ops:
            if instrs[probe_idx].opcode == Opcode.LD:
                emit(f"v{probe_idx} = MG(a{probe_idx}, 0)")
            else:
                emit(f"MW(a{probe_idx}, sv{probe_idx}, {mode_lit})")
                if cycle != n - 1:
                    bail_conditions.append("TR.dirty")
        # ALU work
        if alu_idx == n - 3:
            # loop branch: resolved below, after any store-dirty check
            pass
        elif alu_idx in sq_set:
            pass  # annulled delay slot: fetched, no work, no effects
        elif alu_idx in inv_sides:
            # inverted side (rotated frame): this is the original loop
            # branch, and TAKEN is the way that *continues* the rotated
            # sequence -- its delay slots straddle the seam and always
            # execute.  Not-taken exits at the original fall-through;
            # for a squash-filled branch that is the wrong way, so the
            # iexit site annuls the two seam slots and pulses the FSM.
            cond = emit_branch_cond(alu_idx)
            emit(f"if not ({cond}):")
            out.depth += 1
            emit_site(cycle, "iexit", alu_idx)
            out.depth -= 1
            if icache_on and total_lines:
                # continuing crosses the seam into this side's segment
                bail_conditions.append(
                    f"not sk{all_sides.index(alu_idx)}")
        elif alu_idx in side_branches:
            # side branch: taken -> exact exit to its target.  The
            # redirect out-prioritizes a dirty store committed this same
            # cycle (both happened; only the exit PC differs), so the
            # taken site is emitted before the dirty bail below.
            cond = emit_branch_cond(alu_idx)
            emit(f"if {cond}:")
            out.depth += 1
            emit_site(cycle, "side", alu_idx)
            out.depth -= 1
            if instrs[alu_idx].squash:
                # continuing = not taken = the wrong way for a
                # squash-filled branch: its delay slots (annulled, see
                # sq_owner) are counted squashed at their WB, and the
                # squash FSM pulses BRANCH_SQUASH for one cycle.
                emit("ST.branch_squashes += 1")
                emit("SFS(False, True)")
            if icache_on and total_lines:
                # next fetch (cycle+1) starts this side's fall-through
                # segment; if it was cold at entry, bail before it
                bail_conditions.append(
                    f"not sk{all_sides.index(alu_idx)}")
        else:
            instr = instrs[alu_idx]
            src = per_site[alu_idx]
            op = instr.opcode
            if op in (Opcode.LD, Opcode.ST, Opcode.ADDI):
                imm = instr.imm
                base = src["a"]
                addr = f"({base} + {imm}) & {_MASK}" if imm else f"{base}"
                if op == Opcode.ADDI:
                    emit(f"v{alu_idx} = {addr}")
                else:
                    emit(f"a{alu_idx} = {addr}")
                    if op == Opcode.ST:
                        emit(f"sv{alu_idx} = {src['b']}")
                    bail_conditions.append(f"a{alu_idx} >= {mmio_base}")
            elif instr.funct in (Funct.MSTEP, Funct.DSTEP):
                call = "mstep" if instr.funct == Funct.MSTEP else "dstep"
                emit(f"_t = MD.{call}({src['a']}, {src['b']})")
                emit(f"v{alu_idx} = _t.value")
            else:
                emit(f"v{alu_idx} = {_alu_expr(instr, src)}")
        if cycle in sfs_clear_cycles:
            emit("SFS(False, False)")  # FSM falls back to NORMAL
        if bail_conditions:
            emit(f"if {' or '.join(bail_conditions)}:")
            out.depth += 1
            emit_site(cycle, "bail")
            out.depth -= 1

    # --------------------------------------------- loop branch resolution
    cond = emit_branch_cond(n - 3)
    if linear:
        # one pass: the bottom backward branch redirects out either way
        emit(f"if {cond}:")
        out.depth += 1
        emit_site(n - 1, "ltaken", n - 3)
        out.depth -= 1
        emit("else:")
        out.depth += 1
        emit_site(n - 1, "exit")
        out.depth -= 1
    else:
        emit(f"if {cond}:")
        out.depth += 1
        emit("it += 1")
        exit_conditions = [f"bud - it * {n} - pen < {max_pass}"]
        if (n - 4) in mem_ops and instrs[n - 4].opcode == Opcode.ST:
            exit_conditions.insert(0, "TR.dirty")
        emit(f"if {' or '.join(exit_conditions)}:")
        out.depth += 1
        emit_site(n - 1, "canonical")
        out.depth -= 2
        emit("else:")
        out.depth += 1
        emit_site(n - 1, "exit")
        out.depth -= 1

    return out.source(), needs_no_ovf, max_pass
