"""The PC unit: displacement adder, incrementer, and the PC chain.

The paper's PC unit contains a displacement adder for branches, an
incrementer, and "a chain of shift registers to save the PC values of the
instructions currently in execution".  The chain is what makes the halted
pipeline restartable: on an exception it freezes with the PCs of the three
uncompleted instructions (those in the MEM, ALU and RF stages), the handler
saves and later reloads it, and three ``jpc``/``jpcrs`` jumps re-execute the
three instructions with each jump riding in the previous jump's delay slots.
"""

from __future__ import annotations

from typing import List


class PcChain:
    """Three-deep shift chain of PC values.

    ``entries[0]`` (PC1) is the *oldest* PC -- the first instruction to
    re-execute on exception return -- and ``entries[2]`` (PC3) the youngest.
    """

    DEPTH = 3

    def __init__(self):
        self.entries: List[int] = [0] * self.DEPTH

    def shift(self, mem_pc: int, alu_pc: int, rf_pc: int) -> None:
        """Record the PCs of the in-flight, uncompleted instructions.

        Called once per cycle while PC shifting is enabled; a frozen chain
        (shifting disabled by an exception) simply stops being updated.
        """
        self.entries = [mem_pc, alu_pc, rf_pc]

    def pop(self) -> int:
        """Read PC1 and shift the chain up (the ``jpc`` datapath action)."""
        oldest = self.entries[0]
        self.entries = self.entries[1:] + [self.entries[-1]]
        return oldest

    def read(self, index: int) -> int:
        """Read PC1/PC2/PC3 (index 0..2) without shifting (``movfrs``)."""
        return self.entries[index]

    def write(self, index: int, value: int) -> None:
        """Write one chain entry (``movtos`` during exception return)."""
        self.entries[index] = value & 0xFFFFFFFF

    def snapshot(self) -> List[int]:
        return list(self.entries)

    def __repr__(self) -> str:
        pc1, pc2, pc3 = self.entries
        return f"PcChain(pc1={pc1:#x}, pc2={pc2:#x}, pc3={pc3:#x})"


class PcUnit:
    """Fetch PC generation: incrementer + displacement-adder redirect.

    The displacement adder means the PC bus can be driven with the branch
    target as soon as the condition is known (end of the branch's ALU
    cycle); in the simulator that appears as ``redirect`` applied at the
    end of the cycle, after the delay-slot fetches have happened.
    """

    def __init__(self, reset_pc: int = 0):
        self.fetch_pc = reset_pc
        self.chain = PcChain()
        self._redirect: int = -1

    def redirect(self, target: int) -> None:
        """Drive the PC bus with a branch/jump target for the next fetch."""
        self._redirect = target & 0xFFFFFFFF

    def advance(self) -> None:
        """End-of-cycle PC update: redirect wins over the incrementer."""
        if self._redirect >= 0:
            self.fetch_pc = self._redirect
            self._redirect = -1
        else:
            self.fetch_pc = (self.fetch_pc + 1) & 0xFFFFFFFF

    def vector(self, address: int = 0) -> None:
        """Exception vectoring: PC is immediately set (paper: to zero)."""
        self.fetch_pc = address
        self._redirect = -1
