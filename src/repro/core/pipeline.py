"""Cycle-accurate model of the MIPS-X five-stage pipeline.

Stage assignment follows Figure 1 of the paper::

    IF   instruction fetch (from the on-chip Icache)
    RF   instruction decode and register fetch
    ALU  ALU or shift operation (also: address computation, branch condition)
    MEM  wait for data from memory on a load / output data for a store
    WB   write the result into the destination register

Timing rules that fall out of this pipeline (and which the software system
must respect, because the hardware does **not** interlock):

* branch conditions resolve at the end of ALU -> **two delay slots**;
* load data arrives at the end of MEM -> **one load delay slot**;
* bypassing covers producer distances 1 (ALU->ALU) and 2 (MEM->ALU); the
  register file writes before it reads, covering distance 3 and beyond --
  the paper's "two levels of bypassing".

Stalls are modelled exactly as the paper's qualified ``w1`` clock: when the
Icache misses or the Ecache reports a late miss, the clock to the control
latches is withheld and *nothing* advances until the memory system
delivers.  The squash FSM and cache-miss FSM of Figures 3 and 4 sequence
squashes and miss services respectively.

Exception return convention: the handler reloads the PC chain (``movtos
pc1/pc2/pc3``) and executes ``jpc; jpc; jpcrs``.  Each jump redirects to
the next chain entry while the following jumps ride in its delay slots, so
the three frozen instructions re-execute exactly once and execution then
continues sequentially.  ``jpcrs`` -- the *last* jump -- restores the PSW,
which keeps PC-chain shifting disabled until every entry has been popped
(the paper's "then PC shifting can be enabled").  One simulator
simplification: the PSW (and with it the operating mode) is restored when
``jpcrs`` reaches ALU, so the first two re-executed fetches of a
*user-mode* return still read system space; none of the reproduced
experiments involve user-mode exception returns.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.coproc.interface import CoprocessorSet
from repro.core.config import MachineConfig
from repro.core.control import CacheMissFsm, SquashFsm, SquashState
from repro.core.datapath import (
    Alu,
    FunnelShifter,
    MdRegister,
    RegisterFile,
    to_signed,
    to_unsigned,
)
from repro.core.pc_unit import PcUnit
from repro.core.psw import Psw, PswBit
from repro.ecache.ecache import Ecache
from repro.ecache.memory import MemorySystem
from repro.icache.cache import Icache
from repro.isa.encoding import DecodeError, decode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Funct, Opcode, SpecialReg

# stage indices
IF, RF, ALU, MEM, WB = 0, 1, 2, 3, 4

_BRANCH_CONDITIONS = {
    Opcode.BEQ: "eq",
    Opcode.BNE: "ne",
    Opcode.BLT: "lt",
    Opcode.BLE: "le",
    Opcode.BGT: "gt",
    Opcode.BGE: "ge",
}


class IllegalInstruction(RuntimeError):
    """A word that does not decode reached the ALU stage un-squashed."""

    def __init__(self, pc: int):
        super().__init__(f"illegal instruction executed at pc={pc:#x}")
        self.pc = pc


class IllegalWord:
    """Placeholder for a fetched word that does not decode.

    Real hardware fetches garbage words without complaint -- e.g. the two
    words that trail a halt, or data beyond a branch -- and only executing
    them matters.  This sentinel flows through the pipe harmlessly and
    raises :class:`IllegalInstruction` only if it reaches ALU un-squashed.
    """

    is_branch = is_jump = is_control = False
    is_load = is_store = is_memory_access = False
    is_coprocessor = is_nop = is_halt = False
    opcode = None
    funct = None

    def __str__(self) -> str:
        return "<illegal word>"


_ILLEGAL_INSTRUCTION = IllegalWord()


class HazardViolation(RuntimeError):
    """Software violated a delay-slot constraint (hazard checking on).

    On the real machine this is silent data corruption: the reorganizer is
    responsible for never letting it happen.
    """

    def __init__(self, message: str, pc: int):
        super().__init__(f"{message} (pc={pc:#x})")
        self.pc = pc


class Flight:
    """One instruction in flight through the pipeline."""

    __slots__ = (
        "pc",
        "instr",
        "squashed",
        "result",
        "dest",
        "mem_address",
        "store_value",
        "mem_resolved",
        "taken",
    )

    def __init__(self, pc: int, instr: Instruction):
        self.pc = pc
        self.instr = instr
        self.squashed = False
        self.result: Optional[int] = None
        self.dest: Optional[int] = None
        self.mem_address = 0
        self.store_value = 0
        self.mem_resolved = False
        self.taken = False

    def __repr__(self) -> str:
        mark = "x" if self.squashed else ""
        return f"<{self.pc:#x}:{self.instr}{mark}>"


@dataclasses.dataclass
class PipelineStats:
    """Counters collected by the pipeline; derived metrics as properties."""

    cycles: int = 0
    fetched: int = 0
    retired: int = 0          #: completed instructions, including no-ops
    squashed: int = 0         #: instructions converted to no-ops in flight
    noops: int = 0            #: retired architectural no-ops
    branches: int = 0
    branches_taken: int = 0
    branch_squashes: int = 0  #: squashing branches that went the wrong way
    jumps: int = 0
    loads: int = 0
    stores: int = 0
    coproc_ops: int = 0
    exceptions: int = 0
    interrupts: int = 0
    page_faults: int = 0
    icache_stall_cycles: int = 0
    data_stall_cycles: int = 0
    halted: bool = False

    @property
    def instructions(self) -> int:
        """Executed instruction count (the paper counts no-ops as
        instructions when quoting no-op percentages and CPI)."""
        return self.retired

    @property
    def cpi(self) -> float:
        return self.cycles / self.retired if self.retired else 0.0

    @property
    def noop_fraction(self) -> float:
        return self.noops / self.retired if self.retired else 0.0

    @property
    def data_references(self) -> int:
        return self.loads + self.stores

    @property
    def data_reference_density(self) -> float:
        """Data references per executed instruction (paper: ~1/3)."""
        return self.data_references / self.retired if self.retired else 0.0

    def mips(self, clock_mhz: float) -> float:
        return clock_mhz / self.cpi if self.cpi else 0.0

    def as_metrics(self) -> "dict[str, int]":
        """Counter values under canonical telemetry catalog names.

        The one audited mapping from these fields to the hierarchical
        names in :mod:`repro.telemetry.catalog`; consumers read this
        instead of scraping attributes.
        """
        return {
            "pipeline.cycles": self.cycles,
            "pipeline.instructions.fetched": self.fetched,
            "pipeline.instructions.retired": self.retired,
            "pipeline.instructions.squashed": self.squashed,
            "pipeline.instructions.noops": self.noops,
            "pipeline.branch.executed": self.branches,
            "pipeline.branch.taken": self.branches_taken,
            "pipeline.branch.squashes": self.branch_squashes,
            "pipeline.jumps": self.jumps,
            "pipeline.mem.loads": self.loads,
            "pipeline.mem.stores": self.stores,
            "pipeline.coproc.ops": self.coproc_ops,
            "pipeline.exceptions.taken": self.exceptions,
            "pipeline.interrupts.taken": self.interrupts,
            "pipeline.page_faults": self.page_faults,
            "pipeline.stall.icache_miss": self.icache_stall_cycles,
            "pipeline.stall.ecache_late_miss": self.data_stall_cycles,
        }


class TraceSink:
    """Hook interface for trace capture; all methods are optional no-ops."""

    def on_fetch(self, pc: int) -> None:
        pass

    def on_retire(self, pc: int, instr: Instruction, squashed: bool) -> None:
        pass

    def on_branch(self, pc: int, instr: Instruction, taken: bool,
                  target: int) -> None:
        pass

    def on_data(self, pc: int, address: int, is_store: bool) -> None:
        pass

    def on_ecache(self, kind: int, address: int) -> None:
        """External-cache reference: kind 0=read, 1=write, 2=ifetch.

        Unlike :meth:`on_data` this fires only for references that
        actually reach the Ecache (MMIO accesses are filtered out) and
        includes the Icache fill traffic, so a replayed stream drives an
        :class:`~repro.ecache.ecache.Ecache` to identical stats.
        """
        pass

    def on_exception(self, cause: str) -> None:
        pass


class FaultHook:
    """Hook interface for fault injection (see :mod:`repro.faults`).

    The pipeline calls :meth:`on_cycle` once per :meth:`Pipeline.cycle`
    invocation *before* any stage work, so a hook can mutate cache state,
    post interrupts, or arm an injected exception for this cycle's
    sampling point.  The hot path pays exactly one ``is not None`` check
    per cycle when no hook is attached (the acceptance budget is a <2%
    throughput regression with faults disabled).

    During a multi-cycle stall the :meth:`Pipeline.run` fast path burns
    the stall in bulk without re-entering :meth:`Pipeline.cycle`; hooks
    therefore observe ``stats.cycles`` jumping and must treat their
    target cycles as "fire at the first opportunity at or after cycle N".
    """

    def on_cycle(self, pipeline: "Pipeline") -> None:
        pass


class Pipeline:
    """The processor proper: datapath + control + memory interfaces."""

    def __init__(self, config: MachineConfig, memory: MemorySystem,
                 icache: Icache, ecache: Ecache,
                 coprocessors: CoprocessorSet):
        self.config = config
        self.memory = memory
        self.icache = icache
        self.ecache = ecache
        self.coprocessors = coprocessors

        self.regs = RegisterFile()
        self.psw = Psw()
        self.psw_old = Psw(0)
        self.md = MdRegister()
        self.pc_unit = PcUnit()
        self.squash_fsm = SquashFsm()
        self.miss_fsm = CacheMissFsm()
        self.stats = PipelineStats()
        self.trace: Optional[TraceSink] = None
        self.fault_hook: Optional[FaultHook] = None
        #: cause override for the next injected async exception; rides the
        #: NMI sampling point so the hot path never tests it directly
        self._fault_cause: Optional[PswBit] = None

        #: s[k] is the flight performing stage k during the current cycle.
        self.s: List[Optional[Flight]] = [None] * 5
        self._stall_left = 0
        self._stall_is_icache = False
        self._ready_fetch: Optional[int] = None
        self._halting = False
        self.halted = False
        self._irq_pending = False
        self._nmi_pending = False
        self._cycle_branch_wrong = False
        self._irq_hold = 0
        #: decode memos per address space (index 0: user, 1: system),
        #: keyed by bare word address so a store invalidates its entry
        #: with one dict pop -- the same O(1) word-address indexing the
        #: translator's block-invalidation map uses.
        self._decode_caches: "tuple[dict, dict]" = ({}, {})
        self._decode_enabled = config.decode_cache
        #: hot-loop translator (the translated fast path); None unless
        #: ``config.jit`` is on and the config shape is supported.
        self._translator = None
        if config.jit:
            from repro.core.translate import Translator
            if Translator.supports(config):
                self._translator = Translator(self)
        memory.write_listeners.append(self._on_store)

    # ------------------------------------------------------------ external
    def reset(self, entry_pc: int = 0) -> None:
        self.pc_unit.vector(entry_pc)
        self.s = [None] * 5
        self._halting = False
        self.halted = False
        self._ready_fetch = None
        if self._translator is not None:
            # a fresh program image is loaded around reset without firing
            # store listeners, so translated blocks may be stale
            self._translator.clear()

    def post_interrupt(self, cause_bits: int = 1, nmi: bool = False) -> None:
        """Assert the (off-chip) interrupt request line."""
        self.memory.icu.post(cause_bits)
        if nmi:
            self._nmi_pending = True
        else:
            self._irq_pending = True

    def _on_store(self, address: int, system_mode: bool) -> None:
        """Store listener: one O(1) pop per memo index (self-modifying
        code re-decodes / re-translates the written word)."""
        self._decode_caches[1 if system_mode else 0].pop(address, None)
        if self._translator is not None:
            self._translator.note_store(address, system_mode)

    # ------------------------------------------------------------- decode
    def _decode_at(self, pc: int, system_mode: bool):
        """Decode the word at ``pc`` once per (mode, address).

        Each fetched word is decoded the first time it is fetched and the
        :class:`~repro.isa.instruction.Instruction` is reused on every
        later fetch of the same address; a store to the address (via
        ``memory.write_listeners``) invalidates the entry, so
        self-modifying code re-decodes.  ``config.decode_cache=False``
        restores decode-on-every-fetch for equivalence testing.
        """
        memo = self._decode_caches[1 if system_mode else 0]
        if self._decode_enabled:
            cached = memo.get(pc)
            if cached is not None:
                return cached
        word = self.memory.space(system_mode).read(pc)
        try:
            instr = decode(word)
        except DecodeError:
            instr = _ILLEGAL_INSTRUCTION
        if self._decode_enabled:
            memo[pc] = instr
        return instr

    # ---------------------------------------------------------- main cycle
    def cycle(self) -> None:  # noqa: C901 - the pipeline is one sequence
        """Advance the machine by one clock cycle."""
        stats = self.stats
        stats.cycles += 1

        if self.fault_hook is not None:
            self.fault_hook.on_cycle(self)

        # w1 withheld: a stall freezes every pipeline latch.
        if self._stall_left > 0:
            self._consume_stall()
            return

        # All PSW reads in a cycle happen before the ALU stage (the only
        # stage that can replace the PSW), so one local suffices.
        psw = self.psw
        mode = psw.system_mode
        s = self.s

        # MEM-stage data probe for the instruction about to enter MEM
        # (the late-miss protocol: a miss re-runs phase 2 of MEM).
        page_fault = False
        mem_next = s[ALU]
        if (mem_next is not None and not mem_next.squashed
                and not mem_next.mem_resolved
                and mem_next.instr.is_memory_access):
            if not self.memory.data_access_mapped(mem_next.mem_address):
                # off-chip MMU signals a data page fault: the access (and
                # everything younger) restarts after the handler maps the
                # page -- the restartability the paper designed for
                self.memory.mmu.record_fault(mem_next.mem_address)
                mem_next.mem_resolved = True
                page_fault = True
            else:
                penalty = self._data_probe(mem_next, mode)
                mem_next.mem_resolved = True
                if penalty > 0:
                    self._stall_left = penalty
                    self._stall_is_icache = False
                    self._consume_stall()
                    return

        # IF-stage probe at the current fetch PC.
        fetch_flight: Optional[Flight] = None
        if not self._halting:
            fetch_pc = self.pc_unit.fetch_pc
            if self._ready_fetch != fetch_pc:
                stall = self._fetch_probe(fetch_pc, mode)
                self._ready_fetch = fetch_pc
                if stall > 0:
                    self._stall_left = stall
                    self._stall_is_icache = True
                    self._consume_stall()
                    return
            fetch_flight = Flight(fetch_pc, self._decode_at(fetch_pc, mode))
            stats.fetched += 1
            if self.trace is not None:
                self.trace.on_fetch(fetch_pc)
            self._ready_fetch = None

        # Pipeline latches shift (w1 rises).
        self.s = s = [fetch_flight, s[IF], s[RF], s[ALU], s[MEM]]

        # WB: the oldest instruction completes -- the *only* point at which
        # machine state (registers) changes, making exceptions restartable.
        self._writeback(s[WB])

        # The PC chain records the PCs of the three uncompleted
        # instructions (MEM, ALU, RF) while shifting is enabled.
        if psw.shift_enabled:
            mem_f, alu_f, rf_f = s[MEM], s[ALU], s[RF]
            self.pc_unit.chain.shift(
                mem_f.pc if mem_f else 0,
                alu_f.pc if alu_f else 0,
                rf_f.pc if rf_f else 0,
            )

        # A page fault behaves like a fault on the instruction now in
        # MEM: nothing younger completes and the chain restarts it.
        if page_fault:
            stats.page_faults += 1
            self._take_exception(PswBit.CAUSE_PGFLT)
            return

        # Interrupts are sampled at the top of the cycle (but held for
        # the one-cycle window after a jpcrs restore, see _alu_compute,
        # and while _async_hold says restart would not be clean).
        if self._irq_hold > 0:
            self._irq_hold -= 1
        elif ((self._nmi_pending
               or (self._irq_pending and psw.interrupts_enabled))
              and not self._async_hold()):
            if self._nmi_pending:
                self._nmi_pending = False
                cause = (self._fault_cause if self._fault_cause is not None
                         else PswBit.CAUSE_NMI)
                self._fault_cause = None
            else:
                self._irq_pending = False
                cause = PswBit.CAUSE_INT
            stats.interrupts += 1
            self._take_exception(cause)
            return

        # MEM work.
        self._mem_stage(s[MEM], mode)

        # ALU work (condition evaluation, redirects, exceptions).
        self._cycle_branch_wrong = False
        exception_taken = self._alu_stage(s[ALU])
        if exception_taken:
            return

        # Quick-compare design alternative: 1-slot machines resolve the
        # branch in RF instead of ALU.
        if self.config.branch_delay_slots == 1:
            self._rf_branch_stage(s[RF])

        self.pc_unit.advance()
        self.squash_fsm.step(exception=False,
                             branch_wrong=self._cycle_branch_wrong)

        # Drain after a halt: everything older than the halt completes.
        if self._halting and (s[RF] is None and s[ALU] is None
                              and s[MEM] is None and s[WB] is None):
            self.halted = True
            stats.halted = True

    # -------------------------------------------------------------- stalls
    def _consume_stall(self) -> None:
        self._stall_left -= 1
        if self._stall_is_icache:
            self.miss_fsm.tick()
            self.stats.icache_stall_cycles += 1
        else:
            self.stats.data_stall_cycles += 1

    def _data_probe(self, flight: Flight, mode: bool) -> int:
        """Ecache timing for the data access of ``flight``; returns the
        stall in cycles."""
        address = flight.mem_address
        if self.trace is not None:
            self.trace.on_data(flight.pc, address, flight.instr.is_store)
        if self.memory.is_mmio(address):
            return 0
        if flight.instr.is_store:
            if self.trace is not None:
                self.trace.on_ecache(1, address)
            return self.ecache.write(address, mode)
        if self.trace is not None:
            self.trace.on_ecache(0, address)
        return self.ecache.read(address, mode)

    def _fetch_probe(self, pc: int, mode: bool) -> int:
        """Icache probe at ``pc``; fills on a miss and returns the stall."""
        cache_config = self.config.icache
        if not cache_config.enabled:
            if self.trace is not None:
                self.trace.on_ecache(2, pc)
            external = self.ecache.ifetch(pc, mode)
            total = cache_config.miss_cycles + external
            if total > 0:
                self.miss_fsm.begin_miss(cache_config.miss_cycles, external)
            return total
        result = self.icache.fetch(pc, mode)
        if result.hit:
            return 0
        external = 0
        for addr in result.fill_addresses:
            if self.trace is not None:
                self.trace.on_ecache(2, addr)
            external += self.ecache.ifetch(addr, mode)
        self.miss_fsm.begin_miss(cache_config.miss_cycles, external)
        return cache_config.miss_cycles + external

    # ------------------------------------------------------------ WB stage
    def _writeback(self, flight: Optional[Flight]) -> None:
        if flight is None:
            return
        if flight.squashed:
            self.stats.squashed += 1
        else:
            if flight.dest is not None and flight.result is not None:
                self.regs.write(flight.dest, flight.result)
            self.stats.retired += 1
            if flight.instr.is_nop:
                self.stats.noops += 1
        if self.trace is not None:
            self.trace.on_retire(flight.pc, flight.instr, flight.squashed)

    # ----------------------------------------------------------- MEM stage
    # Dispatch is a precomputed opcode -> handler table (built after the
    # class body): the common case -- a compute op with no MEM work -- is
    # one dict probe instead of a seven-way opcode comparison chain.
    def _mem_stage(self, flight: Optional[Flight], mode: bool) -> None:
        if flight is None or flight.squashed:
            return
        handler = self._MEM_DISPATCH.get(flight.instr.opcode)
        if handler is not None:
            handler(self, flight, mode)

    def _mem_ld(self, flight: Flight, mode: bool) -> None:
        flight.result = self.memory.read(flight.mem_address, mode)
        self.stats.loads += 1

    def _mem_st(self, flight: Flight, mode: bool) -> None:
        self.memory.write(flight.mem_address, flight.store_value, mode)
        self.stats.stores += 1

    def _mem_ldf(self, flight: Flight, mode: bool) -> None:
        word = self.memory.read(flight.mem_address, mode)
        self._fpu().load_word(flight.instr.src2, word)
        self.stats.loads += 1
        if self.coprocessors.fault_busy_ops:
            self._coproc_busy_stall()

    def _mem_stf(self, flight: Flight, mode: bool) -> None:
        self.memory.write(flight.mem_address,
                          self._fpu().store_word(flight.instr.src2), mode)
        self.stats.stores += 1
        if self.coprocessors.fault_busy_ops:
            self._coproc_busy_stall()

    def _mem_cop(self, flight: Flight, mode: bool) -> None:
        self.coprocessors.execute(flight.mem_address)
        self.stats.coproc_ops += 1
        if self.coprocessors.fault_busy_ops:
            self._coproc_busy_stall()

    def _mem_movtoc(self, flight: Flight, mode: bool) -> None:
        self.coprocessors.write_data(flight.mem_address, flight.store_value)
        self.stats.coproc_ops += 1
        if self.coprocessors.fault_busy_ops:
            self._coproc_busy_stall()

    def _mem_movfrc(self, flight: Flight, mode: bool) -> None:
        flight.result = self.coprocessors.read_data(flight.mem_address)
        self.stats.coproc_ops += 1
        if self.coprocessors.fault_busy_ops:
            self._coproc_busy_stall()

    def _coproc_busy_stall(self) -> None:
        """Injected coprocessor-busy fault: the coprocessor holds its busy
        line, withholding ``w1`` exactly like a late data miss -- timing
        only, never architectural state."""
        stall = self.coprocessors.consume_busy()
        if stall > 0:
            self._stall_left += stall
            self._stall_is_icache = False

    def _fpu(self):
        fpu = self.coprocessors.fpu_slot
        if fpu is None:
            raise RuntimeError("ldf/stf executed with no coprocessor 1 attached")
        return fpu

    # ----------------------------------------------------------- ALU stage
    def _operand(self, register: int, consumer: Flight) -> int:
        """Resolve a source operand at the consumer's ALU stage.

        Bypass priority: the distance-1 producer (now in MEM) beats the
        register file; the distance-2 producer already wrote the register
        file this cycle (WB runs first).  A distance-1 *load* is the
        unbypassable case -- its data arrives only at the end of MEM -- so
        the consumer sees the stale register value (or, with hazard
        checking on, a :class:`HazardViolation`).
        """
        if register == 0:
            return 0
        producer = self.s[MEM]
        if (producer is not None and not producer.squashed
                and producer.dest == register):
            if producer.instr.opcode in (Opcode.LD, Opcode.MOVFRC):
                if self.config.hazard_check:
                    raise HazardViolation(
                        f"r{register} used in the load delay slot of the "
                        f"load at {producer.pc:#x}", consumer.pc)
                return self.regs.read(register)  # stale, as on hardware
            if producer.result is not None:
                return producer.result
        return self.regs.read(register)

    def _alu_stage(self, flight: Optional[Flight]) -> bool:
        """Execute the ALU stage; returns True if an exception was taken."""
        if flight is None or flight.squashed:
            return False
        if flight.instr is _ILLEGAL_INSTRUCTION:
            raise IllegalInstruction(flight.pc)
        instr = flight.instr
        op = instr.opcode
        if op == Opcode.COMPUTE:
            return self._alu_compute(flight)
        if op in _BRANCH_CONDITIONS:
            if self.config.branch_delay_slots == 2:
                self._resolve_branch(flight, slots=(self.s[RF], self.s[IF]))
            return False
        # memory format: address / payload computation
        base = self._operand(instr.src1, flight)
        flight.mem_address = to_unsigned(to_signed(base) + instr.imm)
        if op == Opcode.ADDI:
            flight.dest = instr.writes_register()
            flight.result = flight.mem_address
        elif op == Opcode.JSPCI:
            flight.dest = instr.writes_register()
            flight.result = to_unsigned(
                flight.pc + 1 + self.config.branch_delay_slots)
            self.pc_unit.redirect(flight.mem_address)
            self.stats.jumps += 1
        elif op in (Opcode.LD, Opcode.MOVFRC):
            flight.dest = instr.writes_register()
        elif op in (Opcode.ST, Opcode.MOVTOC):
            flight.store_value = self._operand(instr.src2, flight)
        return False

    # Compute ops dispatch through two precomputed funct -> handler
    # tables (built after the class body).  Arithmetic handlers return
    # ``(result, overflow)``; control handlers return True when they took
    # an exception -- together they reproduce the original comparison
    # chain decision-for-decision.
    def _alu_compute(self, flight: Flight) -> bool:
        instr = flight.instr
        a = self._operand(instr.src1, flight)
        arith = self._ARITH_DISPATCH.get(instr.funct)
        if arith is not None:
            result, overflow = arith(self, flight, instr, a)
            if overflow and self.psw.trap_on_overflow:
                self._take_exception(PswBit.CAUSE_OVF)
                return True
            if result is not None:
                flight.dest = instr.writes_register()
                flight.result = result
            return False
        control = self._CONTROL_DISPATCH.get(instr.funct)
        if control is None:  # pragma: no cover - decode guarantees a funct
            raise RuntimeError(f"unimplemented funct {instr.funct}")
        return control(self, flight, instr, a)

    def _fn_add(self, flight, instr, a):
        out = Alu.add(a, self._operand(instr.src2, flight))
        return out.value, out.overflow

    def _fn_sub(self, flight, instr, a):
        out = Alu.sub(a, self._operand(instr.src2, flight))
        return out.value, out.overflow

    def _fn_and(self, flight, instr, a):
        return a & self._operand(instr.src2, flight), False

    def _fn_or(self, flight, instr, a):
        return a | self._operand(instr.src2, flight), False

    def _fn_xor(self, flight, instr, a):
        return a ^ self._operand(instr.src2, flight), False

    def _fn_not(self, flight, instr, a):
        return ~a & 0xFFFFFFFF, False

    def _fn_sll(self, flight, instr, a):
        return FunnelShifter.sll(a, instr.shamt), False

    def _fn_srl(self, flight, instr, a):
        return FunnelShifter.srl(a, instr.shamt), False

    def _fn_sra(self, flight, instr, a):
        return FunnelShifter.sra(a, instr.shamt), False

    def _fn_rotl(self, flight, instr, a):
        return FunnelShifter.rotl(a, instr.shamt), False

    def _fn_mstep(self, flight, instr, a):
        out = self.md.mstep(a, self._operand(instr.src2, flight))
        return out.value, out.overflow

    def _fn_dstep(self, flight, instr, a):
        out = self.md.dstep(a, self._operand(instr.src2, flight))
        return out.value, False

    def _fn_movfrs(self, flight, instr, a):
        return self._read_special(instr.shamt), False

    def _fn_movtos(self, flight, instr, a) -> bool:
        # the PSW (and with it the mode) "can only be changed while
        # executing in system mode": user-mode writes to special
        # state trap instead (privileged-instruction trap)
        if not self.psw.system_mode:
            self._take_exception(PswBit.CAUSE_TRAP)
            return True
        self._write_special(instr.shamt, a)
        return False

    def _fn_trap(self, flight, instr, a) -> bool:
        self._take_exception(PswBit.CAUSE_TRAP)
        return True

    def _fn_jpc(self, flight, instr, a) -> bool:
        if not self.psw.system_mode:
            self._take_exception(PswBit.CAUSE_TRAP)
            return True
        self.pc_unit.redirect(self.pc_unit.chain.pop())
        self.stats.jumps += 1
        return False

    def _fn_jpcrs(self, flight, instr, a) -> bool:
        if not self.psw.system_mode:
            self._take_exception(PswBit.CAUSE_TRAP)
            return True
        self.pc_unit.redirect(self.pc_unit.chain.pop())
        self.psw = self.psw_old.copy()
        # hardware interlock: one cycle after the restore, jpcrs is
        # still in MEM -- an interrupt then would freeze the chain
        # with jpcrs itself in it and re-execute it against a shifted
        # chain.  A second held cycle guarantees forward progress:
        # the oldest re-executed instruction reaches WB before the
        # next interrupt can freeze the chain, so a saturating
        # interrupt source cannot livelock the machine.
        self._irq_hold = 2
        self.stats.jumps += 1
        return False

    def _fn_halt(self, flight, instr, a) -> bool:
        self._halting = True
        for slot in (self.s[RF], self.s[IF]):
            if slot is not None:
                slot.squashed = True
        return False

    # -------------------------------------------------------- branch logic
    def _resolve_branch(self, flight: Flight, slots) -> None:
        instr = flight.instr
        a = self._operand(instr.src1, flight)
        b = self._operand(instr.src2, flight)
        taken = Alu.compare(_BRANCH_CONDITIONS[instr.opcode], a, b)
        flight.taken = taken
        target = to_unsigned(flight.pc + instr.imm)
        self.stats.branches += 1
        if taken:
            self.stats.branches_taken += 1
            self.pc_unit.redirect(target)
        wrong_way = instr.squash and not taken
        if wrong_way:
            self.stats.branch_squashes += 1
            self._cycle_branch_wrong = True
            for slot in slots:
                if slot is not None:
                    slot.squashed = True
        if self.trace is not None:
            self.trace.on_branch(flight.pc, instr, taken, target)

    def _rf_branch_stage(self, flight: Optional[Flight]) -> None:
        """Quick-compare alternative: resolve branches in RF (one slot).

        Operand availability is stricter: the comparator sits on the
        register-file outputs, so distance-1 producers and distance-1/2
        loads cannot feed it (the paper's reason for rejecting the scheme).
        """
        if flight is None or flight.squashed or not flight.instr.is_branch:
            return
        instr = flight.instr
        if self.config.hazard_check:
            for register in (instr.src1, instr.src2):
                if register == 0:
                    continue
                for producer, distance in ((self.s[ALU], 1), (self.s[MEM], 2)):
                    if (producer is None or producer.squashed
                            or producer.dest != register):
                        continue
                    is_load = producer.instr.opcode in (Opcode.LD,
                                                        Opcode.MOVFRC)
                    if distance == 1 or is_load:
                        raise HazardViolation(
                            f"quick compare cannot bypass r{register}",
                            flight.pc)
        # value resolution: WB wrote this cycle; distance-2 compute results
        # are bypassed from the MEM latch.
        values = []
        for register in (instr.src1, instr.src2):
            producer = self.s[MEM]
            if (register != 0 and producer is not None
                    and not producer.squashed and producer.dest == register
                    and producer.result is not None):
                values.append(producer.result)
            else:
                values.append(self.regs.read(register))
        taken = Alu.compare(_BRANCH_CONDITIONS[instr.opcode], *values)
        flight.taken = taken
        target = to_unsigned(flight.pc + instr.imm)
        self.stats.branches += 1
        if taken:
            self.stats.branches_taken += 1
            self.pc_unit.redirect(target)
        wrong_way = instr.squash and not taken
        if wrong_way:
            self.stats.branch_squashes += 1
            self._cycle_branch_wrong = True
            if self.s[IF] is not None:
                self.s[IF].squashed = True
        if self.trace is not None:
            self.trace.on_branch(flight.pc, instr, taken, target)

    # ---------------------------------------------------- special registers
    def _read_special(self, which: int) -> int:
        special = SpecialReg(which)
        if special == SpecialReg.PSW:
            return self.psw.value
        if special == SpecialReg.PSWOLD:
            return self.psw_old.value
        if special == SpecialReg.MD:
            return self.md.value
        return self.pc_unit.chain.read(which - SpecialReg.PC1)

    def _write_special(self, which: int, value: int) -> None:
        special = SpecialReg(which)
        if special == SpecialReg.PSW:
            self.psw = Psw(value)
        elif special == SpecialReg.PSWOLD:
            self.psw_old = Psw(value)
        elif special == SpecialReg.MD:
            self.md.value = value & 0xFFFFFFFF
        else:
            self.pc_unit.chain.write(which - SpecialReg.PC1, value)

    # ----------------------------------------------------------- exceptions
    def _async_hold(self) -> bool:
        """Interlock on *asynchronous* exception sampling.

        Evaluated only while an interrupt/NMI is actually pending, so the
        per-cycle hot path never pays for it.  The PC chain restarts the
        three uncompleted instructions (MEM, ALU, RF) after the handler;
        sampling is therefore held whenever that restart would not be
        architecturally clean:

        * a **squashed** flight sits in RF/ALU/MEM -- freezing the chain
          now would record its PC and the handler return would execute a
          squashed instruction for real (the squash decision is not part
          of the saved state);
        * an **mstep/dstep** sits in ALU/MEM/RF -- the step mutates the
          MD register in its ALU stage, so re-execution would apply it
          twice (the reorganizer keeps multiply sequences short, and the
          interlock window is bounded by the sequence length);
        * PC **shifting is disabled** -- the handler has not yet saved
          the chain, and a nested exception would overwrite PSWold and
          the frozen chain, losing the restart state unrecoverably;
        * the machine is **draining after a halt**.

        Every holding condition clears within a bounded number of cycles
        (squash windows are two cycles, handlers re-enable shifting on
        return), so a pending interrupt is delayed, never lost.
        """
        if self._halting or not self.psw.shift_enabled:
            return True
        for k in (RF, ALU, MEM):
            flight = self.s[k]
            if flight is None:
                continue
            if flight.squashed:
                return True
            if flight.instr.funct in (Funct.MSTEP, Funct.DSTEP):
                return True
        return False

    def _take_exception(self, cause: PswBit) -> None:
        """Halt the pipeline: no-op everything in flight, freeze the PC
        chain, swap the PSW, and vector to address zero in system space."""
        self.stats.exceptions += 1
        self.psw_old = self.psw.copy()
        self.psw.set_cause(cause)
        self.psw.system_mode = True
        self.psw.interrupts_enabled = False
        self.psw.shift_enabled = False
        for k in (IF, RF):          # the Squash line
            if self.s[k] is not None:
                self.s[k].squashed = True
        for k in (ALU, MEM):        # the Exception line
            if self.s[k] is not None:
                self.s[k].squashed = True
        self.pc_unit.vector(0)
        self._ready_fetch = None
        self.squash_fsm.step(exception=True, branch_wrong=False)
        if self.trace is not None:
            self.trace.on_exception(cause.name)

    # ------------------------------------------------------------- running
    def run(self, max_cycles: int = 10_000_000) -> PipelineStats:
        """Run until ``halt`` retires or the cycle budget is exhausted.

        Stall fast path: while the qualified ``w1`` clock is withheld the
        pipeline latches are frozen and every stalled cycle is identical,
        so a multi-cycle stall is consumed in one step instead of one
        :meth:`cycle` call per cycle.  Cycle counts, stall counters and
        the miss FSM advance exactly as they would per-cycle;
        single-stepping via :meth:`cycle` is unchanged.
        """
        stats = self.stats
        translator = self._translator
        if translator is None:
            while not self.halted and stats.cycles < max_cycles:
                if self._stall_left > 1:
                    bulk = min(self._stall_left, max_cycles - stats.cycles)
                    self._consume_stall_bulk(bulk)
                    continue
                self.cycle()
            return self.stats
        # Translated fast path: a fetch discontinuity (branch target,
        # vector, bail continuation) is the only place a translated loop
        # can start, so hot-head counting and block dispatch live here
        # and sequential fetches stay on the interpretive path untouched.
        blocks = translator.blocks
        dead = translator.dead
        last_pc = -2
        while not self.halted and stats.cycles < max_cycles:
            if self._stall_left > 1:
                bulk = min(self._stall_left, max_cycles - stats.cycles)
                self._consume_stall_bulk(bulk)
                continue
            fetch_pc = self.pc_unit.fetch_pc
            if fetch_pc != last_pc + 1 and self._stall_left == 0:
                block = blocks.get(fetch_pc)
                if block is None and fetch_pc not in dead:
                    translator.note_target(fetch_pc)
                    block = blocks.get(fetch_pc)
                if block is not None and translator.try_enter(block,
                                                              max_cycles):
                    last_pc = -2
                    continue
            last_pc = fetch_pc
            self.cycle()
        return self.stats

    def _consume_stall_bulk(self, cycles: int) -> None:
        """Equivalent of ``cycles`` consecutive stalled :meth:`cycle` calls."""
        self.stats.cycles += cycles
        self._stall_left -= cycles
        if self._stall_is_icache:
            self.miss_fsm.tick_many(cycles)
            self.stats.icache_stall_cycles += cycles
        else:
            self.stats.data_stall_cycles += cycles

    # --------------------------------------------------------- quiescence
    @property
    def quiescent(self) -> bool:
        """True at a squash-free, exception-free cycle boundary.

        This is the snapshot contract (see :mod:`repro.checkpoint`): the
        squash FSM is back in NORMAL, nothing in flight is squashed, no
        memory-system stall is being serviced, no halt or interrupt-hold
        window is open.  At such a boundary the five stage latches, the
        PC unit and the FSMs fully determine the next cycle, so a machine
        restored from this state replays the future bit-identically.  A
        halted machine is trivially quiescent.
        """
        if self.halted:
            return True
        if self.squash_fsm.state is not SquashState.NORMAL:
            return False
        if self._stall_left or self.miss_fsm.stalled:
            return False
        if self._halting or self._irq_hold:
            return False
        return not any(flight is not None and flight.squashed
                       for flight in self.s)


# Stage-dispatch tables, precomputed once at import: opcode/funct
# comparison chains in the per-cycle hot loop become single dict probes.
Pipeline._MEM_DISPATCH = {
    Opcode.LD: Pipeline._mem_ld,
    Opcode.ST: Pipeline._mem_st,
    Opcode.LDF: Pipeline._mem_ldf,
    Opcode.STF: Pipeline._mem_stf,
    Opcode.COP: Pipeline._mem_cop,
    Opcode.MOVTOC: Pipeline._mem_movtoc,
    Opcode.MOVFRC: Pipeline._mem_movfrc,
}

Pipeline._ARITH_DISPATCH = {
    Funct.ADD: Pipeline._fn_add,
    Funct.SUB: Pipeline._fn_sub,
    Funct.AND: Pipeline._fn_and,
    Funct.OR: Pipeline._fn_or,
    Funct.XOR: Pipeline._fn_xor,
    Funct.NOT: Pipeline._fn_not,
    Funct.SLL: Pipeline._fn_sll,
    Funct.SRL: Pipeline._fn_srl,
    Funct.SRA: Pipeline._fn_sra,
    Funct.ROTL: Pipeline._fn_rotl,
    Funct.MSTEP: Pipeline._fn_mstep,
    Funct.DSTEP: Pipeline._fn_dstep,
    Funct.MOVFRS: Pipeline._fn_movfrs,
}

Pipeline._CONTROL_DISPATCH = {
    Funct.MOVTOS: Pipeline._fn_movtos,
    Funct.TRAP: Pipeline._fn_trap,
    Funct.JPC: Pipeline._fn_jpc,
    Funct.JPCRS: Pipeline._fn_jpcrs,
    Funct.HALT: Pipeline._fn_halt,
}
