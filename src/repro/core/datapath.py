"""Datapath components: register file, ALU, funnel shifter, MD register.

All arithmetic is 32-bit two's complement.  Values are stored as unsigned
Python ints in [0, 2**32); :func:`to_signed` converts for comparisons.

The execute unit contains a 32-bit ALU and a 64-bit-to-32-bit funnel
shifter, plus the special MD register used by the multiply and divide step
instructions -- exactly the inventory the paper gives for the execute
section of the datapath.
"""

from __future__ import annotations

from typing import List

WORD_MASK = 0xFFFFFFFF
SIGN_BIT = 0x80000000


def to_signed(value: int) -> int:
    """Interpret a 32-bit word as a signed integer."""
    value &= WORD_MASK
    return value - (1 << 32) if value & SIGN_BIT else value


def to_unsigned(value: int) -> int:
    """Wrap a Python int into a 32-bit word."""
    return value & WORD_MASK


class RegisterFile:
    """31 general registers plus the hardwired constant zero (register 0).

    Writes to register 0 are silently discarded, making r0 "a place to
    write unwanted data" as the paper puts it.
    """

    def __init__(self):
        self._regs: List[int] = [0] * 32

    def read(self, number: int) -> int:
        return self._regs[number]

    def write(self, number: int, value: int) -> None:
        if number != 0:
            self._regs[number] = value & WORD_MASK

    def snapshot(self) -> List[int]:
        return list(self._regs)

    def load(self, values) -> None:
        for number, value in enumerate(values):
            self.write(number, value)

    def __getitem__(self, number: int) -> int:
        return self.read(number)

    def __setitem__(self, number: int, value: int) -> None:
        self.write(number, value)


class Alu:
    """The 32-bit ALU.  Add/subtract report signed overflow.

    Overflow feeds the maskable trap-on-overflow exception; the paper
    describes how this replaced the sticky-overflow-bit design once the
    squash-based exception hardware made a true trap simple.
    """

    @staticmethod
    def add(a: int, b: int) -> "AluResult":
        raw = to_signed(a) + to_signed(b)
        return AluResult(to_unsigned(raw), not -(1 << 31) <= raw < (1 << 31))

    @staticmethod
    def sub(a: int, b: int) -> "AluResult":
        raw = to_signed(a) - to_signed(b)
        return AluResult(to_unsigned(raw), not -(1 << 31) <= raw < (1 << 31))

    @staticmethod
    def and_(a: int, b: int) -> "AluResult":
        return AluResult((a & b) & WORD_MASK, False)

    @staticmethod
    def or_(a: int, b: int) -> "AluResult":
        return AluResult((a | b) & WORD_MASK, False)

    @staticmethod
    def xor(a: int, b: int) -> "AluResult":
        return AluResult((a ^ b) & WORD_MASK, False)

    @staticmethod
    def not_(a: int) -> "AluResult":
        return AluResult(~a & WORD_MASK, False)

    @staticmethod
    def compare(op: str, a: int, b: int) -> bool:
        """Full compare for branches (signed)."""
        sa, sb = to_signed(a), to_signed(b)
        if op == "eq":
            return sa == sb
        if op == "ne":
            return sa != sb
        if op == "lt":
            return sa < sb
        if op == "le":
            return sa <= sb
        if op == "gt":
            return sa > sb
        if op == "ge":
            return sa >= sb
        raise ValueError(f"unknown comparison {op!r}")


class AluResult:
    """Value + signed-overflow flag from one ALU operation."""

    __slots__ = ("value", "overflow")

    def __init__(self, value: int, overflow: bool):
        self.value = value
        self.overflow = overflow


class FunnelShifter:
    """The 64-bit-to-32-bit funnel shifter.

    A funnel shifter concatenates two 32-bit inputs and extracts a 32-bit
    window; ordinary shifts and rotates are special cases of the window
    placement, which is how the real datapath implements them.
    """

    @staticmethod
    def funnel(high: int, low: int, amount: int) -> int:
        """Extract 32 bits starting ``amount`` bits down from the top of
        the 64-bit value ``high:low`` (0 <= amount <= 32)."""
        if not 0 <= amount <= 32:
            raise ValueError(f"funnel amount out of range: {amount}")
        combined = ((high & WORD_MASK) << 32) | (low & WORD_MASK)
        return (combined >> (32 - amount)) & WORD_MASK if amount else high & WORD_MASK

    @classmethod
    def sll(cls, value: int, amount: int) -> int:
        return cls.funnel(value, 0, amount) if amount else value & WORD_MASK

    @classmethod
    def srl(cls, value: int, amount: int) -> int:
        return cls.funnel(0, value, 32 - amount) if amount else value & WORD_MASK

    @classmethod
    def sra(cls, value: int, amount: int) -> int:
        fill = WORD_MASK if value & SIGN_BIT else 0
        return cls.funnel(fill, value, 32 - amount) if amount else value & WORD_MASK

    @classmethod
    def rotl(cls, value: int, amount: int) -> int:
        return cls.funnel(value, value, amount) if amount else value & WORD_MASK


class MdRegister:
    """The multiply/divide (MD) special register.

    ``mstep`` implements one conditional-add step of a shift-and-add
    multiply: with the multiplier loaded in MD, each step adds the
    multiplicand into the accumulator when MD's low bit is set, then shifts
    MD right.  ``dstep`` implements one non-restoring-style divide step on
    a remainder/quotient pair, accumulating quotient bits into MD.
    """

    def __init__(self):
        self.value = 0

    def mstep(self, acc: int, operand: int) -> AluResult:
        take = bool(self.value & 1)
        self.value = (self.value >> 1) & WORD_MASK
        if take:
            return Alu.add(acc, operand)
        return AluResult(acc & WORD_MASK, False)

    def dstep(self, remainder: int, divisor: int) -> AluResult:
        """One restoring-division step (unsigned).

        Shifts the remainder left by one, bringing in the top bit of MD;
        subtracts the divisor if it fits, recording the quotient bit in
        MD's low end.
        """
        shifted = ((remainder << 1) | ((self.value >> 31) & 1)) & 0x1FFFFFFFFF
        self.value = (self.value << 1) & WORD_MASK
        if shifted >= (divisor & WORD_MASK) and divisor != 0:
            self.value |= 1
            return AluResult((shifted - (divisor & WORD_MASK)) & WORD_MASK, False)
        return AluResult(shifted & WORD_MASK, False)
