"""The :class:`Machine` facade: a complete MIPS-X system.

A ``Machine`` wires together the pipeline, the on-chip instruction cache,
the external cache, main memory (system and user spaces), the MMIO devices
and any attached coprocessors, and provides the convenient entry points the
examples and benchmarks use::

    from repro.core import Machine
    from repro.asm import assemble

    machine = Machine()
    machine.load_program(assemble(SOURCE))
    stats = machine.run()
    print(stats.cpi, machine.console.values)
"""

from __future__ import annotations

from typing import Optional

from repro.asm.unit import Program
from repro.coproc.interface import Coprocessor, CoprocessorSet
from repro.core.config import MachineConfig
from repro.core.pipeline import FaultHook, Pipeline, PipelineStats, TraceSink
from repro.ecache.ecache import Ecache
from repro.ecache.memory import MemorySystem
from repro.icache.cache import Icache


class Machine:
    """A complete simulated MIPS-X processor system."""

    def __init__(self, config: Optional[MachineConfig] = None,
                 memory: Optional[MemorySystem] = None):
        """``memory`` may be a shared :class:`MemorySystem` -- several
        machines built over the same one form a shared-memory
        multiprocessor (see :mod:`repro.multi`)."""
        self.config = config or MachineConfig()
        self.memory = memory or MemorySystem(self.config.memory_words,
                                             self.config.mmio_base)
        self.icache = Icache(self.config.icache)
        self.ecache = Ecache(self.config.ecache)
        self.coprocessors = CoprocessorSet()
        self.pipeline = Pipeline(self.config, self.memory, self.icache,
                                 self.ecache, self.coprocessors)

    # ------------------------------------------------------------- loading
    def load_program(self, program: Program, system_space: bool = True,
                     user_space: bool = False) -> None:
        """Load a program image and point the fetch PC at its entry."""
        if system_space:
            self.memory.system.load_image(program.image)
        if user_space:
            self.memory.user.load_image(program.image)
        self.pipeline.reset(program.entry)

    def attach_coprocessor(self, coprocessor: Coprocessor) -> None:
        self.coprocessors.attach(coprocessor)

    # ------------------------------------------------------------- running
    def run(self, max_cycles: int = 10_000_000) -> PipelineStats:
        return self.pipeline.run(max_cycles)

    def step(self) -> None:
        self.pipeline.cycle()

    def post_interrupt(self, cause_bits: int = 1, nmi: bool = False) -> None:
        self.pipeline.post_interrupt(cause_bits, nmi)

    # -------------------------------------------------- checkpoint/restore
    def snapshot(self, drain_bound: int = 4096) -> dict:
        """Drain to a quiescent cycle boundary and capture full state.

        Returns the JSON-serializable state dict of
        :func:`repro.checkpoint.state.machine_state` (imported lazily so
        plain simulation never loads the checkpoint layer).  Draining
        advances the machine by however many cycles quiescence takes;
        an uninterrupted run passes through the identical state, which
        is what makes restore bit-exact.
        """
        from repro.checkpoint.state import drain_machine, machine_state

        drain_machine(self, drain_bound)
        return machine_state(self)

    def restore(self, state: dict) -> None:
        """Restore a snapshot taken on an identically configured machine.

        Validates format version and configuration first (named errors,
        see :mod:`repro.checkpoint.state`) and invalidates every derived
        structure (decode memos, translated JIT blocks) so execution
        resumes bit-identical to the run the snapshot was taken from.
        """
        from repro.checkpoint.state import restore_machine

        restore_machine(self, state)

    # ----------------------------------------------------------- accessors
    @property
    def regs(self):
        return self.pipeline.regs

    @property
    def psw(self):
        return self.pipeline.psw

    @property
    def stats(self) -> PipelineStats:
        return self.pipeline.stats

    @property
    def console(self):
        return self.memory.console

    @property
    def halted(self) -> bool:
        return self.pipeline.halted

    def set_trace(self, sink: Optional[TraceSink]) -> None:
        self.pipeline.trace = sink

    def set_fault_hook(self, hook: Optional[FaultHook]) -> None:
        """Attach (or detach, with ``None``) a fault-injection hook; see
        :mod:`repro.faults`.  Costs nothing per cycle when detached."""
        self.pipeline.fault_hook = hook

    def metrics(self, into=None):
        """Harvest this machine into a telemetry registry.

        Convenience for :func:`repro.telemetry.collect_machine`
        (imported lazily so plain simulation never loads telemetry).
        Returns the registry; pass ``into`` to accumulate across runs.
        """
        from repro.telemetry.metrics import collect_machine

        return collect_machine(self, into)


def run_program(program: Program, config: Optional[MachineConfig] = None,
                max_cycles: int = 10_000_000) -> Machine:
    """Load and run a program on a fresh machine; returns the machine."""
    machine = Machine(config)
    machine.load_program(program)
    machine.run(max_cycles)
    return machine


def run_assembly(source: str, config: Optional[MachineConfig] = None,
                 max_cycles: int = 10_000_000) -> Machine:
    """Assemble, load and run source text on a fresh machine."""
    from repro.asm.assembler import assemble

    return run_program(assemble(source), config, max_cycles)
