"""Machine configuration for the MIPS-X reproduction.

The defaults reproduce the machine described in the paper:

* 20 MHz two-phase clock (50 ns cycle);
* 512-word on-chip instruction cache, 8-way set-associative with 4 sets and
  16-word blocks, per-word sub-block valid bits, 2-word fetch-back, and a
  2-cycle miss service time;
* 64K-word external cache with the *late miss* protocol (a miss re-executes
  the second phase of MEM until the data arrives);
* two branch delay slots with optional squashing;
* software-managed interlocks (one load delay slot, delay slots after every
  control transfer).

Everything the tradeoff studies sweep is a field here, so a different design
point is just a different ``MachineConfig``.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class IcacheConfig:
    """On-chip instruction cache organization.

    ``miss_cycles`` is the paper's miss *service* time: the number of stall
    cycles to fetch the missed word (and, with ``fetchback >= 2``, its
    sequential successors) from the external cache.  The paper's key
    implementation result is that placing the tags in the datapath made this
    2 cycles instead of 3.
    """

    enabled: bool = True
    sets: int = 4
    ways: int = 8
    block_words: int = 16
    fetchback: int = 2          #: words fetched back per miss (paper: 2)
    miss_cycles: int = 2        #: stall cycles per miss (paper: 2)
    replacement: str = "lru"    #: "lru", "fifo", or "random"

    @property
    def total_words(self) -> int:
        return self.sets * self.ways * self.block_words

    @property
    def tags(self) -> int:
        """Number of tag entries (the paper's 32 tags in the datapath)."""
        return self.sets * self.ways

    @property
    def valid_bits(self) -> int:
        """One valid bit per word under sub-block placement (paper: 512)."""
        return self.total_words


@dataclasses.dataclass
class EcacheConfig:
    """External cache + main memory timing.

    An Ecache hit completes within the MEM pipestage (no stall) thanks to
    the late-miss protocol; a miss stalls the pipe for ``miss_penalty``
    cycles while the processor loops on phase 2 of MEM.
    """

    enabled: bool = True
    size_words: int = 65536
    line_words: int = 4
    miss_penalty: int = 8       #: main-memory access time in cycles
    write_through: bool = True


@dataclasses.dataclass
class MachineConfig:
    """Complete machine description."""

    clock_mhz: float = 20.0
    branch_delay_slots: int = 2
    icache: IcacheConfig = dataclasses.field(default_factory=IcacheConfig)
    ecache: EcacheConfig = dataclasses.field(default_factory=EcacheConfig)
    #: Raise :class:`~repro.core.pipeline.HazardViolation` when software
    #: violates a delay-slot constraint instead of silently computing with
    #: stale values.  On: catches reorganizer bugs.  Off: models hardware.
    hazard_check: bool = True
    #: Memoize instruction decode per (mode, address); invalidated on
    #: stores, so self-modifying code still decodes the written word.
    #: Off: decode every fetched word on every fetch (the reference
    #: behavior the equivalence tests compare against).
    decode_cache: bool = True
    #: Memory words; addresses are word addresses in [0, memory_words).
    memory_words: int = 1 << 22
    #: Word address at and above which accesses are uncached MMIO.
    mmio_base: int = 0x3FFF00
    #: Translate hot loops into specialized closures (the translated fast
    #: path, :mod:`repro.core.translate`).  Cycle-exact and bit-identical
    #: to the interpretive pipeline; off by default so the interpretive
    #: path stays the reference behavior.
    jit: bool = False
    #: Taken-branch count at a loop head before translation is attempted.
    jit_threshold: int = 8
    #: Admission bound on the translation cache (LRU-evicted beyond this).
    jit_max_blocks: int = 64

    @property
    def cycle_ns(self) -> float:
        return 1000.0 / self.clock_mhz

    def mips(self, cpi: float) -> float:
        """Sustained MIPS for a given cycles-per-instruction."""
        return self.clock_mhz / cpi


def perfect_memory_config(**overrides) -> MachineConfig:
    """A config with ideal memory (no Icache or Ecache misses).

    Used to separate pipeline effects (branches, no-ops) from memory-system
    effects, as the paper does when quoting the 15.6%/18.3% no-op fractions
    separately from the 1.7-cycle overall CPI.
    """
    config = MachineConfig(**overrides)
    config.icache = IcacheConfig(enabled=False, miss_cycles=0)
    config.ecache = EcacheConfig(enabled=False, miss_penalty=0)
    return config
