"""Processor status word (PSW) for the MIPS-X reproduction.

The paper's PSW stores the operating mode (system/user), interrupt masking,
the maskable trap-on-overflow enable (which replaced the abandoned *sticky
overflow bit*), and cause bits that let the (unvectored) exception handler
distinguish an interrupt, an arithmetic overflow, and a non-maskable
interrupt.  ``PSWold`` receives the PSW when an exception is taken and is
restored by ``jpcrs`` at the end of the return sequence.
"""

from __future__ import annotations

import enum


class PswBit(enum.IntEnum):
    """Bit positions in the PSW."""

    MODE = 0        #: 1 = system mode, 0 = user mode
    IE = 1          #: maskable interrupts enabled
    TE = 2          #: trap on ALU / multiply-divide overflow enabled
    SHIFT_EN = 3    #: PC chain shifting enabled (frozen during exceptions)
    CAUSE_INT = 4   #: last exception was a maskable interrupt
    CAUSE_OVF = 5   #: last exception was an arithmetic overflow
    CAUSE_NMI = 6   #: last exception was a non-maskable interrupt
    CAUSE_TRAP = 7  #: last exception was a software trap
    CAUSE_PGFLT = 8  #: last exception was a data page fault (off-chip MMU)


_CAUSE_BITS = (
    PswBit.CAUSE_INT,
    PswBit.CAUSE_OVF,
    PswBit.CAUSE_NMI,
    PswBit.CAUSE_TRAP,
    PswBit.CAUSE_PGFLT,
)


class Psw:
    """A mutable PSW with named bit accessors.

    The reset state is system mode, interrupts off, overflow traps off,
    PC-chain shifting on -- the state the machine needs to bootstrap.
    """

    RESET_VALUE = (1 << PswBit.MODE) | (1 << PswBit.SHIFT_EN)

    def __init__(self, value: int = RESET_VALUE):
        self.value = value & 0xFFFFFFFF

    # -------------------------------------------------------------- bit ops
    def get(self, bit: PswBit) -> bool:
        return bool(self.value & (1 << bit))

    def set(self, bit: PswBit, on: bool = True) -> None:
        if on:
            self.value |= 1 << bit
        else:
            self.value &= ~(1 << bit) & 0xFFFFFFFF

    # ------------------------------------------------------ named accessors
    @property
    def system_mode(self) -> bool:
        return self.get(PswBit.MODE)

    @system_mode.setter
    def system_mode(self, on: bool) -> None:
        self.set(PswBit.MODE, on)

    @property
    def interrupts_enabled(self) -> bool:
        return self.get(PswBit.IE)

    @interrupts_enabled.setter
    def interrupts_enabled(self, on: bool) -> None:
        self.set(PswBit.IE, on)

    @property
    def trap_on_overflow(self) -> bool:
        return self.get(PswBit.TE)

    @trap_on_overflow.setter
    def trap_on_overflow(self, on: bool) -> None:
        self.set(PswBit.TE, on)

    @property
    def shift_enabled(self) -> bool:
        return self.get(PswBit.SHIFT_EN)

    @shift_enabled.setter
    def shift_enabled(self, on: bool) -> None:
        self.set(PswBit.SHIFT_EN, on)

    # ------------------------------------------------------------ exceptions
    def set_cause(self, cause_bit: PswBit) -> None:
        """Clear all cause bits, then set ``cause_bit``."""
        for bit in _CAUSE_BITS:
            self.set(bit, False)
        self.set(cause_bit, True)

    def cause_name(self) -> str:
        for bit in _CAUSE_BITS:
            if self.get(bit):
                return bit.name
        return "NONE"

    def copy(self) -> "Psw":
        return Psw(self.value)

    def __repr__(self) -> str:
        mode = "sys" if self.system_mode else "usr"
        flags = "".join(
            name for name, on in [
                ("I", self.interrupts_enabled),
                ("T", self.trap_on_overflow),
                ("S", self.shift_enabled),
            ] if on
        )
        return f"Psw({mode},{flags or '-'},{self.cause_name()})"
