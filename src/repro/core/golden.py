"""Instruction-level ("golden") simulator with *naive* sequential semantics.

The MIPS-X project "had written an instruction level simulator for the
machine" by January 1985, long before the pipeline-accurate model.  This is
that simulator: branches take effect immediately, load results are usable
immediately, and there is no timing.  It serves two purposes:

* it defines the *naive* semantics that the compiler emits and the code
  reorganizer consumes -- reorganized code run on the cycle-accurate
  pipeline must produce exactly the architectural state this model
  produces on the un-reorganized code (the key reorganizer test);
* it executes orders of magnitude faster, so compiler tests can be broad.
"""

from __future__ import annotations


from repro.asm.unit import Program
from repro.coproc.interface import CoprocessorSet
from repro.core.datapath import (
    Alu,
    FunnelShifter,
    MdRegister,
    RegisterFile,
    to_signed,
    to_unsigned,
)
from repro.ecache.memory import MemorySystem
from repro.isa.encoding import decode
from repro.isa.opcodes import Funct, Opcode

_CONDITIONS = {
    Opcode.BEQ: "eq",
    Opcode.BNE: "ne",
    Opcode.BLT: "lt",
    Opcode.BLE: "le",
    Opcode.BGT: "gt",
    Opcode.BGE: "ge",
}


class GoldenError(RuntimeError):
    """The golden model hit an unsupported instruction or ran away."""


class GoldenSimulator:
    """Sequential, untimed executor for naive (pre-reorganization) code."""

    def __init__(self, memory_words: int = 1 << 22, mmio_base: int = 0x3FFF00):
        self.memory = MemorySystem(memory_words, mmio_base)
        self.regs = RegisterFile()
        self.md = MdRegister()
        self.coprocessors = CoprocessorSet()
        self.pc = 0
        self.halted = False
        self.instructions = 0

    @property
    def console(self):
        return self.memory.console

    def load_program(self, program: Program) -> None:
        self.memory.system.load_image(program.image)
        self.pc = program.entry

    def run(self, max_instructions: int = 10_000_000) -> int:
        while not self.halted:
            if self.instructions >= max_instructions:
                raise GoldenError(
                    f"exceeded {max_instructions} instructions at pc={self.pc:#x}")
            self.step()
        return self.instructions

    def step(self) -> None:  # noqa: C901 - one case per opcode
        instr = decode(self.memory.system.read(self.pc))
        self.instructions += 1
        regs = self.regs
        next_pc = self.pc + 1
        op = instr.opcode
        if op == Opcode.COMPUTE:
            funct = instr.funct
            a = regs[instr.src1]
            b = regs[instr.src2]
            if funct == Funct.ADD:
                regs[instr.dst] = Alu.add(a, b).value
            elif funct == Funct.SUB:
                regs[instr.dst] = Alu.sub(a, b).value
            elif funct == Funct.AND:
                regs[instr.dst] = a & b
            elif funct == Funct.OR:
                regs[instr.dst] = a | b
            elif funct == Funct.XOR:
                regs[instr.dst] = a ^ b
            elif funct == Funct.NOT:
                regs[instr.dst] = ~a & 0xFFFFFFFF
            elif funct == Funct.SLL:
                regs[instr.dst] = FunnelShifter.sll(a, instr.shamt)
            elif funct == Funct.SRL:
                regs[instr.dst] = FunnelShifter.srl(a, instr.shamt)
            elif funct == Funct.SRA:
                regs[instr.dst] = FunnelShifter.sra(a, instr.shamt)
            elif funct == Funct.ROTL:
                regs[instr.dst] = FunnelShifter.rotl(a, instr.shamt)
            elif funct == Funct.MSTEP:
                regs[instr.dst] = self.md.mstep(a, b).value
            elif funct == Funct.DSTEP:
                regs[instr.dst] = self.md.dstep(a, b).value
            elif funct == Funct.MOVFRS:
                if instr.shamt == 2:  # MD
                    regs[instr.dst] = self.md.value
                else:
                    regs[instr.dst] = 0
            elif funct == Funct.MOVTOS:
                if instr.shamt == 2:
                    self.md.value = a
            elif funct == Funct.HALT:
                self.halted = True
            else:
                raise GoldenError(
                    f"golden model does not support {funct} (pc={self.pc:#x})")
        elif op == Opcode.ADDI:
            regs[instr.src2] = to_unsigned(to_signed(regs[instr.src1]) + instr.imm)
        elif op == Opcode.LD:
            regs[instr.src2] = self.memory.read(
                to_unsigned(to_signed(regs[instr.src1]) + instr.imm), True)
        elif op == Opcode.ST:
            self.memory.write(
                to_unsigned(to_signed(regs[instr.src1]) + instr.imm),
                regs[instr.src2], True)
        elif op == Opcode.JSPCI:
            target = to_unsigned(to_signed(regs[instr.src1]) + instr.imm)
            if instr.src2 != 0:
                regs[instr.src2] = self.pc + 1  # naive link: next instruction
            next_pc = target
        elif op in _CONDITIONS:
            if Alu.compare(_CONDITIONS[op], regs[instr.src1], regs[instr.src2]):
                next_pc = self.pc + instr.imm
        elif op == Opcode.COP:
            self.coprocessors.execute(
                to_unsigned(to_signed(regs[instr.src1]) + instr.imm))
        elif op == Opcode.MOVTOC:
            self.coprocessors.write_data(
                to_unsigned(to_signed(regs[instr.src1]) + instr.imm),
                regs[instr.src2])
        elif op == Opcode.MOVFRC:
            regs[instr.src2] = self.coprocessors.read_data(
                to_unsigned(to_signed(regs[instr.src1]) + instr.imm))
        elif op == Opcode.LDF:
            fpu = self.coprocessors.fpu_slot
            if fpu is None:
                raise GoldenError("ldf with no coprocessor 1")
            fpu.load_word(instr.src2, self.memory.read(
                to_unsigned(to_signed(regs[instr.src1]) + instr.imm), True))
        elif op == Opcode.STF:
            fpu = self.coprocessors.fpu_slot
            if fpu is None:
                raise GoldenError("stf with no coprocessor 1")
            self.memory.write(
                to_unsigned(to_signed(regs[instr.src1]) + instr.imm),
                fpu.store_word(instr.src2), True)
        else:  # pragma: no cover
            raise GoldenError(f"unhandled opcode {op}")
        self.pc = next_pc


def run_golden(program: Program,
               max_instructions: int = 10_000_000) -> GoldenSimulator:
    """Load + run a naive-semantics program; returns the simulator."""
    sim = GoldenSimulator()
    sim.load_program(program)
    sim.run(max_instructions)
    return sim
