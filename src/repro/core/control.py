"""The two control finite state machines (Figures 3 and 4 of the paper).

The paper eliminated a global controller: each datapath section has local
decode, and the only two FSMs live in the PC unit.  One sequences
instruction-cache misses; the other performs instruction squashing, and is
*shared* between squashed branches and exceptions -- the paper's key
control insight ("squashing two branch slots only requires a single extra
input to the squashing finite state machine that is used to handle
exceptions").

Both FSMs here are load-bearing: the pipeline in
:mod:`repro.core.pipeline` drives every stall and squash through them, and
``benchmarks/bench_fsm_figures.py`` prints their transition tables to
reproduce the figures.
"""

from __future__ import annotations

import enum
from typing import List, Tuple


class SquashState(enum.Enum):
    NORMAL = "NORMAL"
    #: One-cycle assertion of the Squash line after a branch went the
    #: wrong way: no-ops the two delay-slot instructions in IF and RF.
    BRANCH_SQUASH = "BRANCH_SQUASH"
    #: One-cycle assertion of both Exception and Squash: no-ops everything
    #: in flight (ALU/MEM via Exception, IF/RF via Squash) and vectors to 0.
    EXCEPTION = "EXCEPTION"


class SquashFsm:
    """Figure 3: the squash FSM.

    Inputs (sampled each cycle):

    * ``exception`` -- an exception is being taken this cycle;
    * ``branch_wrong`` -- a squashing branch in ALU resolved against its
      prediction, so its delay slots must be converted to no-ops.

    Outputs:

    * ``squash_line`` -- no-op the instructions in IF and RF;
    * ``exception_line`` -- no-op the instructions in ALU and MEM (and
      block writes to the MD register and the PSW).
    """

    def __init__(self):
        self.state = SquashState.NORMAL
        self.squash_line = False
        self.exception_line = False
        self.transitions = 0

    def step(self, exception: bool, branch_wrong: bool) -> None:
        if exception:
            next_state = SquashState.EXCEPTION
        elif branch_wrong:
            next_state = SquashState.BRANCH_SQUASH
        else:
            next_state = SquashState.NORMAL
        if next_state is not self.state:
            self.transitions += 1
        self.state = next_state
        self.squash_line = next_state is not SquashState.NORMAL
        self.exception_line = next_state is SquashState.EXCEPTION

    @staticmethod
    def transition_table() -> List[Tuple[str, str, str, str]]:
        """(state, input, next state, asserted outputs) rows for Figure 3."""
        rows = []
        for state in SquashState:
            rows.append((state.value, "exception", "EXCEPTION",
                         "Exception+Squash"))
            rows.append((state.value, "branch wrong way", "BRANCH_SQUASH",
                         "Squash"))
            rows.append((state.value, "otherwise", "NORMAL", "-"))
        return rows


class MissState(enum.Enum):
    IDLE = "IDLE"
    #: Fetching the word that missed from the external cache.
    FETCH_MISS = "FETCH_MISS"
    #: Fetching the next sequential word (the paper's double fetch-back).
    FETCH_NEXT = "FETCH_NEXT"
    #: Looping on phase 2 while the external memory system is busy -- the
    #: qualified w1 clock is withheld, so control state does not advance.
    WAIT_EXTERNAL = "WAIT_EXTERNAL"


class CacheMissFsm:
    """Figure 4: the instruction-cache miss FSM.

    A miss takes ``FETCH_MISS`` then ``FETCH_NEXT`` (two cycles of stall,
    one fetched word each).  If a fetched word also misses in the external
    cache, the FSM sits in ``WAIT_EXTERNAL`` for the main-memory latency
    before the fetch cycle completes -- the late-miss retry loop.
    """

    def __init__(self):
        self.state = MissState.IDLE
        self._plan: List[MissState] = []
        self.miss_sequences = 0
        self.stall_cycles = 0

    @property
    def stalled(self) -> bool:
        return self.state is not MissState.IDLE

    def begin_miss(self, fetch_cycles: int, external_cycles: int = 0) -> None:
        """Start servicing a miss.

        ``fetch_cycles`` is the number of fetch-back cycles (the Icache
        miss service time, 2 on the paper's machine); ``external_cycles``
        is any additional main-memory wait because a fetch-back word also
        missed in the external cache.
        """
        if self.stalled:
            raise RuntimeError("miss started while already servicing a miss")
        if fetch_cycles <= 0 and external_cycles <= 0:
            return
        self.miss_sequences += 1
        plan = [MissState.FETCH_MISS] if fetch_cycles > 0 else []
        plan.extend([MissState.WAIT_EXTERNAL] * external_cycles)
        plan.extend([MissState.FETCH_NEXT] * max(0, fetch_cycles - 1))
        self._plan = plan
        self.state = plan[0]

    def tick(self) -> bool:
        """Consume one stall cycle; returns True while still stalled."""
        if not self.stalled:
            return False
        self.stall_cycles += 1
        self._plan.pop(0)
        self.state = self._plan[0] if self._plan else MissState.IDLE
        return self.stalled

    def tick_many(self, cycles: int) -> None:
        """Consume ``cycles`` stall cycles at once.

        Exactly equivalent to calling :meth:`tick` ``cycles`` times; the
        pipeline's stall fast path uses it to burn a whole miss service
        without re-entering the per-cycle machinery.
        """
        if cycles <= 0 or not self.stalled:
            return
        consumed = min(cycles, len(self._plan))
        self.stall_cycles += consumed
        del self._plan[:consumed]
        self.state = self._plan[0] if self._plan else MissState.IDLE

    @staticmethod
    def transition_table() -> List[Tuple[str, str, str]]:
        """(state, input, next state) rows for Figure 4."""
        return [
            ("IDLE", "icache miss", "FETCH_MISS"),
            ("IDLE", "icache hit", "IDLE"),
            ("FETCH_MISS", "ecache hit", "FETCH_NEXT"),
            ("FETCH_MISS", "ecache miss (late miss)", "WAIT_EXTERNAL"),
            ("FETCH_NEXT", "ecache hit", "IDLE"),
            ("FETCH_NEXT", "ecache miss (late miss)", "WAIT_EXTERNAL"),
            ("WAIT_EXTERNAL", "memory busy", "WAIT_EXTERNAL"),
            ("WAIT_EXTERNAL", "data returned", "FETCH_NEXT or IDLE"),
        ]
