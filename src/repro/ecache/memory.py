"""Main memory, MMIO devices, and the two address spaces.

MIPS-X provides system and user operating modes "that execute in separate
address spaces"; a :class:`MemorySystem` therefore owns two
:class:`Memory` images, selected by the PSW mode bit.

Memory is *word* addressed (see DESIGN.md) and split functional/timing:
the :class:`Memory` objects hold real data, while the external cache in
:mod:`repro.ecache.ecache` only models timing.  Addresses at or above the
MMIO base bypass the cache and dispatch to devices (console output and the
off-chip interrupt control unit).
"""

from __future__ import annotations

from typing import Dict


class MemoryFault(RuntimeError):
    """Access outside the configured physical memory."""


class Memory:
    """A sparse word-addressed 32-bit memory image."""

    def __init__(self, size_words: int):
        self.size_words = size_words
        self._words: Dict[int, int] = {}

    def read(self, address: int) -> int:
        if not 0 <= address < self.size_words:
            raise MemoryFault(f"read outside memory: {address:#x}")
        return self._words.get(address, 0)

    def write(self, address: int, value: int) -> None:
        if not 0 <= address < self.size_words:
            raise MemoryFault(f"write outside memory: {address:#x}")
        self._words[address] = value & 0xFFFFFFFF

    def load_image(self, image: Dict[int, int]) -> None:
        """Bulk-load an image, masking every value to 32 bits like
        :meth:`write` -- hand-built images cannot smuggle wider words
        past the functional model."""
        for address in image:
            if not 0 <= address < self.size_words:
                raise MemoryFault(f"image word outside memory: {address:#x}")
        self._words.update(
            (address, value & 0xFFFFFFFF) for address, value in image.items())

    def __len__(self) -> int:
        return len(self._words)


class MmioDevice:
    """A memory-mapped device occupying one or more word addresses."""

    def read(self, offset: int) -> int:  # pragma: no cover - interface
        return 0

    def write(self, offset: int, value: int) -> None:  # pragma: no cover
        pass


class Console(MmioDevice):
    """Word/character output port used by the runtime's ``print`` support.

    Offset 0: write a word (collected in :attr:`values`).
    Offset 1: write a character code (collected in :attr:`text`).
    """

    WORD_PORT = 0
    CHAR_PORT = 1

    def __init__(self):
        self.values = []
        self.text = ""

    def write(self, offset: int, value: int) -> None:
        if offset == self.WORD_PORT:
            signed = value - (1 << 32) if value & 0x80000000 else value
            self.values.append(signed)
        elif offset == self.CHAR_PORT:
            self.text += chr(value & 0xFF)


class InterruptControlUnit(MmioDevice):
    """The paper's separate off-chip interrupt control unit.

    Exceptions on MIPS-X are not vectored; the handler reads this unit to
    find which device interrupted.  Offset 0 reads (and clears) the pending
    cause word; offset 1 reads it without clearing.
    """

    def __init__(self):
        self.pending = 0

    def post(self, cause_bits: int) -> None:
        self.pending |= cause_bits

    def read(self, offset: int) -> int:
        value = self.pending
        if offset == 0:
            self.pending = 0
        return value


class MmuDevice(MmioDevice):
    """A minimal off-chip MMU for the demand-paging demonstration.

    The paper: "All instructions are restartable so MIPS-X will support a
    dynamic, paged virtual memory system."  The MMU checks data accesses
    against a set of *resident* pages; a miss raises the page-fault
    exception and latches the faulting address here for the handler.

    Ports (relative to the device base):

    * read 0  -- the faulting word address of the last fault;
    * write 0 -- make the page containing the written address resident;
    * write 1 -- evict the page containing the written address;
    * write 2 -- 1 enables paging, 0 disables it (boot code's job).
    """

    PAGE_WORDS = 256

    #: pages never paged out: the vector/handler page -- a pager must be
    #: able to run without faulting on its own code and save area, so the
    #: OS pins it (page 0 here, where the exception vector lives)
    PINNED = frozenset({0})

    def __init__(self):
        self.enabled = False
        self.resident = set(self.PINNED)
        self.fault_address = 0
        self.faults = 0

    def page_of(self, address: int) -> int:
        return address // self.PAGE_WORDS

    def mapped(self, address: int) -> bool:
        return not self.enabled or self.page_of(address) in self.resident

    def record_fault(self, address: int) -> None:
        self.fault_address = address
        self.faults += 1

    def read(self, offset: int) -> int:
        return self.fault_address

    def write(self, offset: int, value: int) -> None:
        if offset == 0:
            self.resident.add(self.page_of(value))
        elif offset == 1:
            self.resident.discard(self.page_of(value))
        elif offset == 2:
            self.enabled = bool(value)


class MemorySystem:
    """Two address spaces plus the MMIO region.

    ``write_listeners`` callbacks fire on every store: processors register
    decode-cache invalidation there, and the multiprocessor system uses it
    for write-through invalidation of the other CPUs' caches.
    """

    CONSOLE_OFFSET = 0xF0
    ICU_OFFSET = 0xE0
    MMU_OFFSET = 0xD0

    def __init__(self, size_words: int, mmio_base: int):
        self.mmio_base = mmio_base
        self.system = Memory(size_words)
        self.user = Memory(size_words)
        self.console = Console()
        self.icu = InterruptControlUnit()
        self.mmu = MmuDevice()
        #: write observers (decode-cache invalidation, multiprocessor
        #: cache invalidation); every registered callback fires per store
        self.write_listeners: list = []
        self._devices = {
            self.CONSOLE_OFFSET: self.console,
            self.CONSOLE_OFFSET + 1: (self.console, Console.CHAR_PORT),
            self.ICU_OFFSET: self.icu,
            self.ICU_OFFSET + 1: (self.icu, 1),
            self.MMU_OFFSET: self.mmu,
            self.MMU_OFFSET + 1: (self.mmu, 1),
            self.MMU_OFFSET + 2: (self.mmu, 2),
        }

    def space(self, system_mode: bool) -> Memory:
        return self.system if system_mode else self.user

    def is_mmio(self, address: int) -> bool:
        return address >= self.mmio_base

    def data_access_mapped(self, address: int) -> bool:
        """MMU check for a data access (MMIO is never paged)."""
        if self.is_mmio(address):
            return True
        return self.mmu.mapped(address)

    def read(self, address: int, system_mode: bool) -> int:
        if self.is_mmio(address):
            return self._mmio(address)[0].read(self._mmio(address)[1])
        return self.space(system_mode).read(address)

    def write(self, address: int, value: int, system_mode: bool) -> None:
        if self.is_mmio(address):
            device, offset = self._mmio(address)
            device.write(offset, value)
            return
        self.space(system_mode).write(address, value)
        for listener in self.write_listeners:
            listener(address, system_mode)

    def _mmio(self, address: int):
        offset = address - self.mmio_base
        entry = self._devices.get(offset)
        if entry is None:
            raise MemoryFault(f"no MMIO device at {address:#x}")
        if isinstance(entry, tuple):
            return entry
        return entry, 0
