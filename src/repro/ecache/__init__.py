"""External cache and main-memory substrate."""

from repro.ecache.ecache import Ecache, EcacheStats
from repro.ecache.memory import (
    Console,
    InterruptControlUnit,
    Memory,
    MemoryFault,
    MemorySystem,
    MmioDevice,
)

__all__ = [
    "Console",
    "Ecache",
    "EcacheStats",
    "InterruptControlUnit",
    "Memory",
    "MemoryFault",
    "MemorySystem",
    "MmioDevice",
]
