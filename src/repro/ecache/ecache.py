"""The external cache (Ecache) timing model.

MIPS-X backs its on-chip instruction cache with "a large 64K word external
cache" that serves both data references and instruction fetch-backs, and
talks to main memory over a shared bus.  A hit completes within the MEM
pipestage; a miss uses the *late miss* protocol -- the cache tells the
processor at the start of WB that the access failed, and the processor
"effectively goes back and re-executes phase 2 of MEM" until the data
arrives.  In the simulator that is a stall of ``miss_penalty`` cycles.

This model is timing-only: real data lives in :class:`repro.ecache.memory.Memory`.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.core.config import EcacheConfig


@dataclasses.dataclass
class EcacheStats:
    reads: int = 0
    read_misses: int = 0
    writes: int = 0
    write_misses: int = 0
    ifetches: int = 0
    ifetch_misses: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes + self.ifetches

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses + self.ifetch_misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def as_metrics(self) -> "dict[str, int]":
        """Counter values under canonical telemetry catalog names.

        ``ecache.late_miss.retries`` counts late-miss protocol
        invocations: every read or ifetch miss re-executes phase 2 of
        MEM until the data arrives, so it equals their sum by
        construction (``check_results.py`` audits this identity).
        """
        return {
            "ecache.reads": self.reads,
            "ecache.read_misses": self.read_misses,
            "ecache.writes": self.writes,
            "ecache.write_misses": self.write_misses,
            "ecache.ifetches": self.ifetches,
            "ecache.ifetch_misses": self.ifetch_misses,
            "ecache.late_miss.retries": (self.read_misses
                                         + self.ifetch_misses),
        }


class Ecache:
    """Direct-mapped external cache with per-mode tagging.

    System and user mode execute in separate address spaces, so the mode
    bit participates in the tag.  Writes are write-through with allocate
    (the board-level design is not specified in the paper; write policy is
    configurable because the Ecache study in ``benchmarks/bench_ecache.py``
    sweeps it).
    """

    INVALID = -1

    def __init__(self, config: EcacheConfig):
        if config.size_words % config.line_words:
            raise ValueError("ecache size must be a multiple of the line size")
        self.config = config
        self.lines = config.size_words // config.line_words
        self._tags: List[int] = [self.INVALID] * self.lines
        self.stats = EcacheStats()
        #: fault injection (repro.faults): while > 0, each read/ifetch
        #: probe is forced to miss and pays the full late-miss penalty --
        #: a board-level retry storm.  Zero when disarmed: the happy path
        #: pays one integer truth test per access.
        self.fault_forced_misses = 0
        self.fault_forced_events = 0

    def begin_forced_misses(self, count: int) -> None:
        """Arm a late-miss retry storm: the next ``count`` read/ifetch
        probes miss regardless of tag state."""
        self.fault_forced_misses = max(0, count)

    def as_metrics(self) -> "dict[str, int]":
        """Stats counters plus the fault-injection event counter."""
        metrics = self.stats.as_metrics()
        metrics["ecache.fault.forced_misses"] = self.fault_forced_events
        return metrics

    def _consume_forced_miss(self) -> bool:
        if self.fault_forced_misses <= 0:
            return False
        self.fault_forced_misses -= 1
        self.fault_forced_events += 1
        return True

    # ------------------------------------------------------------- helpers
    def _probe(self, address: int, system_mode: bool, allocate: bool) -> bool:
        line_addr = address // self.config.line_words
        index = line_addr % self.lines
        tag = (line_addr // self.lines) * 2 + (1 if system_mode else 0)
        hit = self._tags[index] == tag
        if not hit and allocate:
            self._tags[index] = tag
        return hit

    # -------------------------------------------------------------- access
    def read(self, address: int, system_mode: bool) -> int:
        """Data read; returns the stall penalty in cycles (0 on a hit)."""
        if not self.config.enabled:
            return 0
        self.stats.reads += 1
        hit = self._probe(address, system_mode, allocate=True)
        if self.fault_forced_misses and self._consume_forced_miss():
            hit = False
        if hit:
            return 0
        self.stats.read_misses += 1
        return self.config.miss_penalty

    def write(self, address: int, system_mode: bool) -> int:
        """Data write; write-through never stalls (buffered), but a
        write-back design allocates and pays the penalty on a miss."""
        if not self.config.enabled:
            return 0
        self.stats.writes += 1
        hit = self._probe(address, system_mode,
                          allocate=not self.config.write_through)
        if not hit:
            self.stats.write_misses += 1
            if not self.config.write_through:
                return self.config.miss_penalty
        return 0

    def ifetch(self, address: int, system_mode: bool) -> int:
        """Instruction fetch-back from the Icache miss FSM; returns the
        extra main-memory stall (0 when the word is in the Ecache)."""
        if not self.config.enabled:
            return 0
        self.stats.ifetches += 1
        hit = self._probe(address, system_mode, allocate=True)
        if self.fault_forced_misses and self._consume_forced_miss():
            hit = False
        if hit:
            return 0
        self.stats.ifetch_misses += 1
        return self.config.miss_penalty

    # ------------------------------------------------------ fault injection
    def inject_tag_corruption(self, rng, count: int = 1) -> int:
        """Corrupt up to ``count`` randomly-chosen live line tags.

        Models single-event upsets in the board-level tag RAM.  A
        corrupted tag is set to :data:`INVALID` rather than a random
        value: this cache is timing-only (data lives in shared memory),
        and a wrong-but-matching tag would be a *functional* fault the
        model cannot express, whereas an invalidated line simply forces
        the next access to pay the late-miss penalty.  Returns the
        number of tags actually corrupted (0 when the cache is cold).
        """
        live = [index for index, tag in enumerate(self._tags)
                if tag != self.INVALID]
        if not live:
            return 0
        corrupted = 0
        for _ in range(count):
            index = live[rng.randrange(len(live))]
            if self._tags[index] != self.INVALID:
                self._tags[index] = self.INVALID
                corrupted += 1
        return corrupted

    def flush(self) -> None:
        self._tags = [self.INVALID] * self.lines
