"""Vectorized trace-driven Ecache replay.

The Ecache is direct-mapped, so its state at any point is just "the tag
last allocated into each line".  That makes the whole replay expressible
in numpy without a Python-level loop: stable-sort the reference stream
by line index, forward-fill the position of the most recent *allocating*
access within each index segment, and compare tags.  An allocating
access always leaves its own tag in the line (on a hit the tag is
already there), so "tag of the latest allocating access before me on my
line" is exactly the live model's stored tag -- replayed stats equal
:class:`repro.ecache.ecache.Ecache`'s bit for bit (pinned by
tests/test_trace_replay.py).

Reference kinds follow the pipeline's ``on_ecache`` stream encoding:
0 = data read, 1 = data write, 2 = instruction fetch-back.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

from repro.core.config import EcacheConfig
from repro.ecache.ecache import EcacheStats

KIND_READ = 0
KIND_WRITE = 1
KIND_IFETCH = 2

_ArrayLike = Union[Sequence[int], np.ndarray]


def replay(config: EcacheConfig, kinds: _ArrayLike,
           addresses: _ArrayLike) -> Tuple[EcacheStats, int]:
    """Replay a (kind, address) reference stream against one config.

    Returns ``(stats, total_stall_cycles)`` -- exactly what feeding the
    same stream through the live :class:`Ecache` one access at a time
    would produce (at a fixed mode; the mode bit only disambiguates
    tags, so a single-mode stream yields identical stats either way).
    """
    kinds = np.ascontiguousarray(np.asarray(kinds, dtype=np.int8))
    addresses = np.ascontiguousarray(np.asarray(addresses, dtype=np.int64))
    if kinds.shape != addresses.shape:
        raise ValueError("kinds and addresses must have the same length")
    stats = EcacheStats()
    if not config.enabled or kinds.size == 0:
        return stats, 0

    lines = config.size_words // config.line_words
    if config.size_words % config.line_words:
        raise ValueError("ecache size must be a multiple of the line size")
    line_addr = addresses // config.line_words
    index = line_addr % lines
    tag = line_addr // lines

    # write-through writes probe without allocating; everything else
    # (reads, fetch-backs, write-back writes) installs its tag on a miss
    if config.write_through:
        allocates = kinds != KIND_WRITE
    else:
        allocates = np.ones(kinds.size, dtype=bool)

    hit = _replay_hits(index, tag, allocates)

    is_read = kinds == KIND_READ
    is_write = kinds == KIND_WRITE
    is_ifetch = kinds == KIND_IFETCH
    miss = ~hit
    stats.reads = int(is_read.sum())
    stats.writes = int(is_write.sum())
    stats.ifetches = int(is_ifetch.sum())
    stats.read_misses = int((is_read & miss).sum())
    stats.write_misses = int((is_write & miss).sum())
    stats.ifetch_misses = int((is_ifetch & miss).sum())

    stalling_misses = stats.read_misses + stats.ifetch_misses
    if not config.write_through:
        stalling_misses += stats.write_misses
    return stats, stalling_misses * config.miss_penalty


def _replay_hits(index: np.ndarray, tag: np.ndarray,
                 allocates: np.ndarray) -> np.ndarray:
    """Per-access hit flags for a direct-mapped cache, vectorized."""
    n = index.size
    order = np.argsort(index, kind="stable")
    idx_sorted = index[order]
    tag_sorted = tag[order]
    alloc_sorted = allocates[order]

    positions = np.arange(n, dtype=np.int64)
    # within each equal-index segment: position of the latest allocating
    # access at or before each slot (segments are contiguous after the
    # stable sort, and positions only grow, so a global running max can
    # never leak across a segment boundary once clamped to the segment
    # start below)
    last_alloc = np.maximum.accumulate(
        np.where(alloc_sorted, positions, np.int64(-1)))
    prev_alloc = np.empty(n, dtype=np.int64)
    prev_alloc[0] = -1
    prev_alloc[1:] = last_alloc[:-1]  # strictly-before semantics

    seg_start = np.empty(n, dtype=bool)
    seg_start[0] = True
    seg_start[1:] = idx_sorted[1:] != idx_sorted[:-1]
    seg_start_pos = np.maximum.accumulate(
        np.where(seg_start, positions, np.int64(0)))

    in_segment = prev_alloc >= seg_start_pos
    hit_sorted = in_segment & (
        tag_sorted[np.maximum(prev_alloc, 0)] == tag_sorted)

    hit = np.empty(n, dtype=bool)
    hit[order] = hit_sorted
    return hit


def replay_data(config: EcacheConfig, addresses: _ArrayLike,
                is_store: _ArrayLike) -> Tuple[EcacheStats, int]:
    """Replay a data-only (address, is_store) stream (the E15 sweep)."""
    stores = np.asarray(is_store, dtype=bool)
    kinds = np.where(stores, np.int8(KIND_WRITE), np.int8(KIND_READ))
    return replay(config, kinds, addresses)
