"""Benchmark-regression check: re-derive the paper-shape orderings.

CI's guard on the reproduced numbers: re-runs a *fast subset* of the
derivations behind ``benchmarks/results/*.txt`` and fails (exit 1) if any
paper-shape ordering asserted in EXPERIMENTS.md breaks --

* **E1, Table 1**: squashing beats no-squash, optional squashing is best
  at each slot count, one slot beats two;
* **E4, fetch-back**: the two-word fetch-back "almost halves" the
  one-word miss ratio, and 3/4-word fetch-back is not advantageous;
* **E5, service time**: no 3-cycle-miss organization recovers what the
  2-cycle (tags-in-datapath) implementation gives;
* **E15, Ecache**: miss rate improves monotonically with size and the
  64K-word design point captures most of the locality.

The full derivations still live in ``pytest benchmarks/``; this script
trades trace length for wall-clock (the shapes are stable well below the
benchmark trace lengths) so it can run on every push.

With ``--bench-file PATH`` the script additionally validates the named
sections of a ``BENCH_pipeline.json`` telemetry file and reports each
missing or malformed section by name -- a partial file (crashed bench
run, hand-edited payload) fails with a readable message instead of a
``KeyError`` traceback.  ``--fuzz-file PATH`` does the same for a
``FUZZ_campaign.json`` fuzzing report, additionally failing when the
campaign itself recorded unexplained divergences or harness failures
(so CI can gate on the artifact alone).  ``--metrics-file PATH`` audits
an aggregated ``METRICS_summary.json`` (see :mod:`repro.telemetry`):
counter-derived CPI must equal the analysis-module CPI for every
workload, and the counter accounting identities must hold on each
snapshot and on the suite totals.  ``--multi PATH`` validates the
``multi`` section a ``repro bench --multi`` run writes: every scaling
point self-checked, results bit-equal to the single-node reference,
``speedup(N=1) == 1.0``, bus contention monotone in the node count, and
a psieve speedup floor at 4 nodes.  ``--jit PATH`` validates the
``jit`` section: the translated fast path must be cycle-exact against
the interpreter on every benchmarked workload and meet the speedup
floors (:data:`JIT_SPEEDUP_FLOOR` aggregate,
:data:`JIT_WORKLOAD_SPEEDUP_FLOOR` per workload).

Usage::

    PYTHONPATH=src python -m repro.tools.check_results [--trace-length N]
        [--bench-file BENCH_pipeline.json] [--fuzz-file FUZZ_campaign.json]
        [--metrics-file METRICS_summary.json] [--multi BENCH_pipeline.json]
        [--jit BENCH_pipeline.json] [--checkpoint CHECKPOINT_campaign.json]

``--checkpoint PATH`` validates a ``CHECKPOINT_campaign.json`` recovery
report (see :mod:`repro.checkpoint.campaign`): every restore-equivalence
case bit-identical, the chaos gate with at least one proven resume, and
every snapshot-corruption case rejected with its named error.

``--service PATH`` validates the ``service`` section of a
``BENCH_service.json`` load-generator report (see
:mod:`repro.service.loadgen`): the cache-hit p50 speedup floor, zero
cached-vs-recomputed payload mismatches, and zero error responses.
``--service-campaign PATH`` validates a ``SERVICE_campaign.json`` chaos
report (see :mod:`repro.service.chaos`): every disturbance class held
with zero wrong responses, the breaker opened and re-closed, and the
SIGTERM drain lost no accepted job.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Callable, List, Tuple

DEFAULT_TRACE_LENGTH = 150_000

#: named sections a complete bench telemetry file must carry, with the
#: keys each section needs for the summary/regression tooling
BENCH_SECTIONS = {
    "core": ("cycles_per_sec", "workloads"),
    "sweep": ("jobs", "ok"),
    "experiments": (),
}


def check_bench_file(path: pathlib.Path) -> List[str]:
    """Validate the named sections of a bench telemetry file.

    Every problem is reported against the *section name* so a partial
    write or schema drift reads as "section 'sweep' is missing", never as
    a bare ``KeyError: 'sweep'``.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return [f"bench file {path} does not exist (run `repro bench`)"]
    try:
        payload = json.loads(path.read_text())
    except ValueError as exc:
        return [f"bench file {path} is not valid JSON: {exc}"]
    if not isinstance(payload, dict):
        return [f"bench file {path}: top level must be an object, "
                f"got {type(payload).__name__}"]
    failures = []
    for section, required_keys in BENCH_SECTIONS.items():
        if section not in payload:
            failures.append(
                f"bench file: section '{section}' is missing "
                "(partial or interrupted bench run?)")
            continue
        value = payload[section]
        if not isinstance(value, dict):
            failures.append(
                f"bench file: section '{section}' must be an object, "
                f"got {type(value).__name__}")
            continue
        for key in required_keys:
            if key not in value:
                failures.append(
                    f"bench file: section '{section}' is missing "
                    f"key '{key}'")
    experiments = payload.get("experiments")
    if isinstance(experiments, dict):
        for job_id, row in experiments.items():
            if not isinstance(row, dict) or "status" not in row:
                failures.append(
                    f"bench file: section 'experiments' row '{job_id}' "
                    "has no 'status' field")
    return failures


#: floors for the translated fast path: aggregate and per-workload
#: wall-clock speedup of the jit over the interpreter.  Measured values
#: sit around 7-9x; the floors leave headroom for noisy CI runners
#: while still catching a fast path that quietly stopped being fast.
JIT_SPEEDUP_FLOOR = 5.0
JIT_WORKLOAD_SPEEDUP_FLOOR = 3.0


def check_jit_section(path: pathlib.Path) -> List[str]:
    """Validate the ``jit`` section of a bench telemetry file.

    Three gates, in order of importance:

    * **equivalence** -- every workload's jit run must report the same
      cycle and retired-instruction counts as the interpretive run
      (``equivalent: true``); the fast path is cycle-exact or it is
      wrong, and no speedup excuses a wrong answer;
    * **speedup floors** -- aggregate >= ``JIT_SPEEDUP_FLOOR``x and each
      workload >= ``JIT_WORKLOAD_SPEEDUP_FLOOR``x over the interpreter;
    * **coverage sanity** -- blocks compiled and entries taken are
      non-zero (a jit that never fires "passes" equivalence trivially).
    """
    path = pathlib.Path(path)
    if not path.exists():
        return [f"bench file {path} does not exist (run `repro bench`)"]
    try:
        payload = json.loads(path.read_text())
    except ValueError as exc:
        return [f"bench file {path} is not valid JSON: {exc}"]
    section = payload.get("jit") if isinstance(payload, dict) else None
    if not isinstance(section, dict):
        return ["bench file: section 'jit' is missing "
                "(run `repro bench` with the translated fast path built)"]
    failures: List[str] = []
    if not section.get("equivalent", False):
        failures.append("jit: aggregate 'equivalent' flag is false -- the "
                        "translated fast path diverged from the interpreter")
    speedup = section.get("speedup", 0.0)
    if not isinstance(speedup, (int, float)) or speedup < JIT_SPEEDUP_FLOOR:
        failures.append(f"jit: aggregate speedup {speedup!r} is below the "
                        f"{JIT_SPEEDUP_FLOOR}x floor")
    workloads = section.get("workloads")
    if not isinstance(workloads, dict) or not workloads:
        failures.append("jit: section has no per-workload rows")
        return failures
    for name, row in sorted(workloads.items()):
        if not isinstance(row, dict):
            failures.append(f"jit: workload '{name}' row is not an object")
            continue
        if not row.get("equivalent", False):
            failures.append(f"jit: workload '{name}' is not cycle-exact "
                            "(jit vs interpreter counts diverged)")
        row_speedup = row.get("speedup", 0.0)
        if row_speedup < JIT_WORKLOAD_SPEEDUP_FLOOR:
            failures.append(
                f"jit: workload '{name}' speedup {row_speedup} is below "
                f"the {JIT_WORKLOAD_SPEEDUP_FLOOR}x floor")
        if not row.get("blocks_compiled"):
            failures.append(f"jit: workload '{name}' compiled no blocks "
                            "(the fast path never engaged)")
        if not row.get("cycle_coverage"):
            failures.append(f"jit: workload '{name}' reports zero cycle "
                            "coverage")
    return failures


#: keys a complete metrics summary must carry
METRICS_KEYS = ("per_workload", "analysis", "totals", "derived")


def check_metrics_file(path: pathlib.Path) -> List[str]:
    """Validate a ``METRICS_summary.json`` aggregate and its identities.

    Structural problems read as named-section messages (like
    :func:`check_bench_file`).  A structurally sound summary still fails
    when the telemetry is inconsistent:

    * **CPI identity** -- each workload's counter-derived CPI
      (``pipeline.cycles / pipeline.instructions.retired``) must equal
      the analysis-module CPI recorded alongside it;
    * **accounting identities** -- per workload and on the suite totals,
      the counters must satisfy the invariants of
      :func:`repro.telemetry.metrics.check_counter_consistency` (stall
      cycles bounded by total cycles, retired+squashed bounded by
      fetched, late-miss retries equal to read+ifetch misses, ...);
    * **derived gauges** -- the summary's ``derived`` section must match
      what the summed counters derive to (no hand-edited gauges).
    """
    from repro.telemetry.metrics import (check_counter_consistency,
                                         derived_from_counters)

    path = pathlib.Path(path)
    if not path.exists():
        return [f"metrics file {path} does not exist (run `repro bench`)"]
    try:
        payload = json.loads(path.read_text())
    except ValueError as exc:
        return [f"metrics file {path} is not valid JSON: {exc}"]
    if not isinstance(payload, dict):
        return [f"metrics file {path}: top level must be an object, "
                f"got {type(payload).__name__}"]
    failures = []
    for key in METRICS_KEYS:
        if not isinstance(payload.get(key), dict):
            failures.append(
                f"metrics file: section '{key}' is missing or not an "
                "object (partial or interrupted bench run?)")
    if failures:
        return failures
    if not payload["per_workload"]:
        failures.append("metrics file: section 'per_workload' is empty "
                        "(the workload-cpi sweep produced no snapshots)")
    analysis = payload["analysis"]
    for name, snapshot in sorted(payload["per_workload"].items()):
        if not isinstance(snapshot, dict):
            failures.append(f"metrics file: workload '{name}' snapshot "
                            "is not an object")
            continue
        counters = {key: value for key, value in snapshot.items()
                    if isinstance(value, int)}
        row = analysis.get(name)
        if not isinstance(row, dict) or "cpi" not in row:
            failures.append(f"metrics file: workload '{name}' has no "
                            "analysis CPI to check against")
            analysis_cpi = None
        else:
            analysis_cpi = row["cpi"]
        for issue in check_counter_consistency(counters, analysis_cpi):
            failures.append(f"metrics file: workload '{name}' failed "
                            f"{issue.name}: {issue.message}")
    totals = payload["totals"]
    for issue in check_counter_consistency(totals):
        failures.append(
            f"metrics file: suite totals failed {issue.name}: "
            f"{issue.message}")
    expected_derived = derived_from_counters(totals)
    for name, expected in expected_derived.items():
        recorded = payload["derived"].get(name)
        if recorded is None or abs(recorded - expected) > 1e-9:
            failures.append(
                f"metrics file: derived gauge '{name}' is {recorded!r}, "
                f"but the summed counters derive to {expected!r}")
    return failures


#: keys a complete multi section must carry
MULTI_KEYS = ("jobs", "ok", "failures", "rows", "curves")

#: keys every multi row must carry
MULTI_ROW_KEYS = ("workload", "nodes", "bus_latency", "invalidation",
                  "cycles", "bus", "result", "result_ok")

#: minimum psieve speedup at 4 nodes (measured: ~1.56 at the quick size,
#: ~2.25 at the full size -- below 1.2 the bus or barrier regressed)
MULTI_PSIEVE_N4_SPEEDUP = 1.2


def check_multi_file(path: pathlib.Path) -> List[str]:
    """Validate the ``multi`` section of a bench telemetry file.

    Structural problems read as named-section messages (like
    :func:`check_bench_file`, never a ``KeyError`` traceback).  A
    structurally sound section still fails when the multiprocessor
    results are wrong:

    * **job failures** -- every scaling point must have completed;
    * **self-check** -- every row's ``result_ok`` (the workload's
      console output against the independently computed expectation);
    * **node-count invariance** -- the parallel workloads report the
      same result at every node count, so all rows of one workload must
      be bit-equal to the single-node reference;
    * **speedup identity** -- each curve's baseline (smallest node
      count) must have speedup exactly 1.0, and an ``N=1`` row can only
      be that baseline;
    * **contention monotonicity** -- at fixed bus latency, bus
      contention cycles must not decrease as nodes are added;
    * **measured scaling** -- when a psieve curve (bus latency 0,
      invalidation on) reaches 4 nodes, its speedup must clear
      :data:`MULTI_PSIEVE_N4_SPEEDUP`.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return [f"multi file {path} does not exist "
                "(run `repro bench --multi`)"]
    try:
        payload = json.loads(path.read_text())
    except ValueError as exc:
        return [f"multi file {path} is not valid JSON: {exc}"]
    if not isinstance(payload, dict):
        return [f"multi file {path}: top level must be an object, "
                f"got {type(payload).__name__}"]
    multi = payload.get("multi")
    if not isinstance(multi, dict):
        return ["multi file: section 'multi' is missing or not an object "
                "(was the bench run started with --multi?)"]
    failures = []
    for key in MULTI_KEYS:
        if key not in multi:
            failures.append(f"multi file: section 'multi' is missing "
                            f"key '{key}'")
    if failures:
        return failures
    for job_id in multi["failures"]:
        failures.append(f"multi file: scaling point '{job_id}' failed "
                        "in the harness")
    rows = multi["rows"]
    if not isinstance(rows, dict) or not rows:
        failures.append("multi file: section 'multi' has no rows "
                        "(empty sweep?)")
        return failures
    by_workload: dict = {}
    for job_id, row in sorted(rows.items()):
        if not isinstance(row, dict):
            failures.append(f"multi file: row '{job_id}' is not an object")
            continue
        missing = [key for key in MULTI_ROW_KEYS if key not in row]
        if missing:
            failures.append(f"multi file: row '{job_id}' is missing "
                            f"{missing}")
            continue
        if not row["result_ok"]:
            failures.append(
                f"multi file: row '{job_id}' failed its self-check "
                f"(result {row['result']!r})")
        by_workload.setdefault(row["workload"], []).append((job_id, row))
    for workload, entries in sorted(by_workload.items()):
        entries.sort(key=lambda pair: pair[1]["nodes"])
        reference_id, reference = entries[0]
        for job_id, row in entries[1:]:
            if row["result"] != reference["result"]:
                failures.append(
                    f"multi file: row '{job_id}' result "
                    f"{row['result']!r} differs from the "
                    f"'{reference_id}' reference "
                    f"{reference['result']!r} (results must be "
                    "node-count invariant)")
    for label, curve in sorted(multi["curves"].items()):
        if not isinstance(curve, dict):
            failures.append(f"multi file: curve '{label}' is not an object")
            continue
        nodes = curve.get("nodes", [])
        speedup = curve.get("speedup", [])
        contention = curve.get("contention_cycles", [])
        if not nodes or not (len(nodes) == len(speedup)
                             == len(contention)):
            failures.append(f"multi file: curve '{label}' arrays are "
                            "empty or misaligned")
            continue
        if list(nodes) != sorted(set(nodes)):
            failures.append(f"multi file: curve '{label}' node counts "
                            f"{nodes} are not strictly increasing")
        if speedup[0] != 1.0:
            failures.append(
                f"multi file: curve '{label}' baseline speedup is "
                f"{speedup[0]!r}, must be exactly 1.0")
        if 1 in nodes and nodes.index(1) != 0:
            failures.append(
                f"multi file: curve '{label}' has an N=1 row that is "
                "not the baseline")
        for a, b in zip(contention, contention[1:]):
            if b < a:
                failures.append(
                    f"multi file: curve '{label}' contention cycles "
                    f"{contention} decrease with node count")
                break
        if (curve.get("workload") == "psieve"
                and curve.get("bus_latency") == 0
                and curve.get("invalidation") and 4 in nodes):
            measured = speedup[nodes.index(4)]
            if measured < MULTI_PSIEVE_N4_SPEEDUP:
                failures.append(
                    f"multi file: curve '{label}' speedup at 4 nodes is "
                    f"{measured}, below the {MULTI_PSIEVE_N4_SPEEDUP} "
                    "floor (bus or barrier regression)")
    return failures


#: keys a complete fuzz campaign report must carry
FUZZ_TOTALS_KEYS = ("jobs", "completed", "ok", "diverged",
                    "harness_failures")


def check_fuzz_file(path: pathlib.Path) -> List[str]:
    """Validate a ``FUZZ_campaign.json`` report and its verdict.

    Structural problems read as named-section messages (like
    :func:`check_bench_file`); a structurally sound report still fails
    when the campaign is incomplete, diverged without a planted
    mutation, or lost jobs to the harness.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return [f"fuzz file {path} does not exist (run `repro fuzz`)"]
    try:
        payload = json.loads(path.read_text())
    except ValueError as exc:
        return [f"fuzz file {path} is not valid JSON: {exc}"]
    if not isinstance(payload, dict):
        return [f"fuzz file {path}: top level must be an object, "
                f"got {type(payload).__name__}"]
    failures = []
    totals = payload.get("totals")
    if not isinstance(totals, dict):
        failures.append("fuzz file: section 'totals' is missing or not "
                        "an object (partial or interrupted campaign?)")
        return failures
    for key in FUZZ_TOTALS_KEYS:
        if key not in totals:
            failures.append(f"fuzz file: section 'totals' is missing "
                            f"key '{key}'")
    if failures:
        return failures
    if not payload.get("complete", False):
        failures.append(
            f"fuzz file: campaign incomplete "
            f"({totals['completed']}/{totals['jobs']} jobs; resume it "
            "by rerunning the same `repro fuzz` command)")
    config = payload.get("config", {})
    if totals["diverged"] and not config.get("mutation"):
        failures.append(
            f"fuzz file: {totals['diverged']} unexplained model "
            "divergence(s) recorded (see the report's 'divergences')")
    if (config.get("mutation") and payload.get("complete")
            and not totals["diverged"]):
        failures.append(
            f"fuzz file: planted mutation {config['mutation']!r} was not "
            "caught -- the oracle failed its self-test")
    if totals["harness_failures"]:
        failures.append(
            f"fuzz file: {totals['harness_failures']} campaign job(s) "
            "failed in the harness (see the report's 'harness')")
    divergences = payload.get("divergences")
    if not isinstance(divergences, list):
        failures.append("fuzz file: section 'divergences' is missing or "
                        "not a list")
    return failures


def check_checkpoint_file(path: pathlib.Path) -> List[str]:
    """Validate a ``CHECKPOINT_campaign.json`` report and its verdict.

    Structural problems read as named-section messages (like
    :func:`check_bench_file`); a structurally sound report still fails
    when any recovery gate failed:

    * **equivalence** -- every restore-equivalence case bit-identical
      (no divergences, no harness failures);
    * **chaos** -- no diverged merges, no harness failures, and at
      least one job *provably resumed* from a snapshot
      (``resumes > 0``: a chaos gate where nothing ever resumes tests
      nothing);
    * **corruption** -- every tamper case rejected with its named error
      and fallen back to a good generation.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return [f"checkpoint file {path} does not exist "
                "(run `repro checkpoint`)"]
    try:
        payload = json.loads(path.read_text())
    except ValueError as exc:
        return [f"checkpoint file {path} is not valid JSON: {exc}"]
    if not isinstance(payload, dict):
        return [f"checkpoint file {path}: top level must be an object, "
                f"got {type(payload).__name__}"]
    failures = []
    for section in ("equivalence", "chaos", "corruption"):
        if not isinstance(payload.get(section), dict):
            failures.append(
                f"checkpoint file: section '{section}' is missing or not "
                "an object (partial or interrupted campaign?)")
    if failures:
        return failures
    equivalence = payload["equivalence"]
    if equivalence.get("diverged"):
        failures.append(
            f"checkpoint file: {equivalence['diverged']} restore-"
            "equivalence case(s) diverged from the straight run "
            "(see the report's 'equivalence.failures')")
    if equivalence.get("harness_failures"):
        failures.append(
            f"checkpoint file: {equivalence['harness_failures']} "
            "equivalence job(s) failed in the harness")
    chaos = payload["chaos"]
    if not chaos.get("resumes"):
        failures.append(
            "checkpoint file: chaos gate recorded zero resumes -- no "
            "killed job provably restarted from a snapshot")
    if chaos.get("diverged"):
        failures.append(
            f"checkpoint file: {chaos['diverged']} chaos job(s) merged "
            "results that differ from the serial uninterrupted reference")
    if chaos.get("harness_failures"):
        failures.append(
            f"checkpoint file: {chaos['harness_failures']} chaos job(s) "
            "failed in the harness")
    corruption = payload["corruption"]
    cases = corruption.get("cases")
    if not isinstance(cases, list) or not cases:
        failures.append("checkpoint file: section 'corruption' has no "
                        "cases")
    else:
        for case in cases:
            if case.get("status") != "ok":
                failures.append(
                    f"checkpoint file: corruption case "
                    f"'{case.get('case')}' ended '{case.get('status')}' "
                    f"({case.get('error')})")
    return failures


#: floors for the service benchmark: cache hits must be at least this
#: much faster than cold misses at p50.  Measured values sit around
#: 300-1000x; the quick (CI smoke) floor is relaxed because tiny runs
#: put event-loop contention, not cache lookups, in the hit p50.
SERVICE_HIT_SPEEDUP_FLOOR = 100.0
SERVICE_HIT_SPEEDUP_FLOOR_QUICK = 25.0

#: keys a complete service benchmark section must carry
SERVICE_KEYS = ("schema", "requests_sent", "responses", "hit_rate",
                "shed_rate", "latency_ms", "hit_speedup_p50",
                "equivalence", "breaker", "cache")

#: disturbance classes a complete service chaos report must cover
SERVICE_DISTURBANCES = ("worker-kill", "cache-corruption", "overload",
                        "malformed-frame", "slow-client", "drain")


def check_service_section(path: pathlib.Path) -> List[str]:
    """Validate the ``service`` section of ``BENCH_service.json``.

    Structural problems read as named-section messages (like
    :func:`check_bench_file`).  A structurally sound section still
    fails when the measured service economics or correctness slipped:

    * **hit speedup** -- cache hits at least
      :data:`SERVICE_HIT_SPEEDUP_FLOOR`x faster than cold misses at
      p50 (:data:`SERVICE_HIT_SPEEDUP_FLOOR_QUICK`x for quick runs);
    * **equivalence** -- every catalog entry recomputed without the
      cache produced a byte-identical canonical payload (zero
      mismatches, at least one check);
    * **clean responses** -- zero error responses under plain load;
    * **sanity** -- rates inside [0, 1], p50 <= p99.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return [f"service file {path} does not exist "
                "(run `repro service-bench`)"]
    try:
        payload = json.loads(path.read_text())
    except ValueError as exc:
        return [f"service file {path} is not valid JSON: {exc}"]
    section = payload.get("service") if isinstance(payload, dict) else None
    if not isinstance(section, dict):
        return ["service file: section 'service' is missing or not an "
                "object (was this written by `repro service-bench`?)"]
    failures = []
    for key in SERVICE_KEYS:
        if key not in section:
            failures.append(f"service file: section 'service' is missing "
                            f"key '{key}'")
    if failures:
        return failures
    floor = (SERVICE_HIT_SPEEDUP_FLOOR_QUICK if section.get("quick")
             else SERVICE_HIT_SPEEDUP_FLOOR)
    speedup = section["hit_speedup_p50"]
    if not isinstance(speedup, (int, float)) or speedup < floor:
        failures.append(
            f"service file: hit speedup p50 {speedup!r} is below the "
            f"{floor}x floor (content-addressed cache no longer pays)")
    equivalence = section["equivalence"]
    if not isinstance(equivalence, dict) or \
            not equivalence.get("checked"):
        failures.append("service file: equivalence pass checked nothing "
                        "(cached-vs-recomputed oracle never ran)")
    elif equivalence.get("mismatches"):
        failures.append(
            f"service file: {equivalence['mismatches']} cached response(s) "
            "differ from their uncached recomputation -- the cache is "
            "serving wrong payloads")
    responses = section["responses"]
    if not isinstance(responses, dict) or responses.get("error"):
        failures.append(
            f"service file: {responses.get('error')} error response(s) "
            "under plain load (expected zero)")
    for rate_key in ("hit_rate", "shed_rate"):
        rate = section[rate_key]
        if not isinstance(rate, (int, float)) or not 0.0 <= rate <= 1.0:
            failures.append(f"service file: {rate_key} {rate!r} is not a "
                            "ratio in [0, 1]")
    latency = section["latency_ms"]
    if not isinstance(latency, dict):
        failures.append("service file: 'latency_ms' is not an object")
    else:
        for lo, hi in (("p50", "p99"), ("hit_p50", "hit_p99"),
                       ("miss_p50", "miss_p99")):
            if latency.get(lo, 0) > latency.get(hi, 0):
                failures.append(
                    f"service file: latency {lo} {latency.get(lo)!r} "
                    f"exceeds {hi} {latency.get(hi)!r}")
    return failures


def check_service_campaign(path: pathlib.Path) -> List[str]:
    """Validate a ``SERVICE_campaign.json`` chaos report.

    Every disturbance class must be present and held, with zero wrong
    responses anywhere, the breaker must have opened *and* re-closed,
    the drain must have lost nothing, and the worst per-disturbance
    p99 must sit under the report's own bound.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return [f"service campaign {path} does not exist "
                "(run `repro service-chaos`)"]
    try:
        payload = json.loads(path.read_text())
    except ValueError as exc:
        return [f"service campaign {path} is not valid JSON: {exc}"]
    if not isinstance(payload, dict):
        return [f"service campaign {path}: top level must be an object, "
                f"got {type(payload).__name__}"]
    failures = []
    disturbances = payload.get("disturbances")
    summary = payload.get("summary")
    if not isinstance(disturbances, dict):
        failures.append("service campaign: section 'disturbances' is "
                        "missing or not an object")
    if not isinstance(summary, dict):
        failures.append("service campaign: section 'summary' is missing "
                        "or not an object")
    if failures:
        return failures
    for name in SERVICE_DISTURBANCES:
        row = disturbances.get(name)
        if not isinstance(row, dict):
            failures.append(f"service campaign: disturbance '{name}' "
                            "was not run")
            continue
        if row.get("wrong"):
            failures.append(
                f"service campaign: disturbance '{name}' produced "
                f"{row['wrong']} wrong response(s)")
        if not row.get("held"):
            failures.append(
                f"service campaign: disturbance '{name}' invariant did "
                "not hold (see its row for which leg failed)")
    if summary.get("wrong_responses"):
        failures.append(
            f"service campaign: {summary['wrong_responses']} wrong "
            "response(s) across the campaign (must be zero)")
    if not summary.get("breaker_opened"):
        failures.append("service campaign: the breaker never opened "
                        "(overload disturbance did not bite)")
    if not summary.get("breaker_reclosed"):
        failures.append("service campaign: the breaker never re-closed "
                        "(no recovery after the open interval)")
    if summary.get("drain_lost"):
        failures.append(
            f"service campaign: drain lost {summary['drain_lost']} "
            "accepted job(s) (graceful shutdown must lose none)")
    worst = summary.get("worst_p99_ms", 0.0)
    bound = summary.get("p99_bound_ms", 0.0)
    if not bound or worst > bound:
        failures.append(
            f"service campaign: worst p99 {worst!r} ms exceeds the "
            f"{bound!r} ms bound")
    if summary.get("exit_code") != 0:
        failures.append(
            f"service campaign: recorded exit code "
            f"{summary.get('exit_code')!r} (0 = all invariants held)")
    return failures


def check_table1_orderings(trace_length: int) -> List[str]:
    """E1: the six branch schemes keep the paper's ordering."""
    from repro.analysis.branch_schemes import table1_rows

    costs = dict(table1_rows())
    failures = []

    def expect(condition: bool, message: str) -> None:
        if not condition:
            failures.append(f"Table 1: {message} ({costs})")

    for slots in ("1", "2"):
        expect(costs[f"{slots}-slot squash optional"]
               <= costs[f"{slots}-slot always squash"],
               f"{slots}-slot optional squash no longer best")
        expect(costs[f"{slots}-slot always squash"]
               < costs[f"{slots}-slot no squash"],
               f"{slots}-slot squashing no longer beats no-squash")
    expect(costs["1-slot no squash"] < costs["2-slot no squash"],
           "one slot no longer beats two (no squash)")
    expect(costs["1-slot squash optional"] < costs["2-slot squash optional"],
           "one slot no longer beats two (squash optional)")
    for name, value in costs.items():
        slots = 2 if name.startswith("2") else 1
        expect(1.0 <= value <= 1.0 + slots,
               f"{name} cost {value} outside [1, 1+slots]")
    return failures


def check_fetchback_ratio(trace_length: int) -> List[str]:
    """E4: the double fetch-back almost halves the miss ratio."""
    from repro.harness.experiments import icache_organization_point

    points = {
        fb: icache_organization_point(sets=4, ways=8, block_words=16,
                                      fetchback=fb,
                                      miss_cycles=max(2, fb),
                                      trace_length=trace_length)
        for fb in (1, 2, 3, 4)
    }
    failures = []
    ratio = points[2]["miss_ratio"] / points[1]["miss_ratio"]
    if not ratio < 0.6:
        failures.append(
            f"fetch-back: 2-word/1-word miss ratio {ratio:.2f} >= 0.6 "
            "(the paper's 'almost halves' no longer holds)")
    for fb in (3, 4):
        if points[fb]["fetch_cost"] < points[2]["fetch_cost"] - 1e-9:
            failures.append(
                f"fetch-back: {fb}-word fetch cost "
                f"{points[fb]['fetch_cost']:.3f} beats 2-word "
                f"{points[2]['fetch_cost']:.3f} (paper: not advantageous)")
    return failures


def check_service_time(trace_length: int) -> List[str]:
    """E5: miss service time dominates miss ratio."""
    from repro.icache.explorer import service_time_study
    from repro.traces.synthetic import paper_regime_program

    trace = list(paper_regime_program().instruction_trace(trace_length))
    paper2, paper3, best3 = service_time_study(trace)
    failures = []
    if not paper2.fetch_cost < paper3.fetch_cost:
        failures.append("service time: 2-cycle miss no longer beats 3-cycle "
                        "on the paper organization")
    if not paper2.fetch_cost < best3.fetch_cost:
        failures.append(
            "service time: a 3-cycle organization "
            f"({best3.label}) recovered the 2-cycle implementation "
            "(contradicts the paper's central cache result)")
    return failures


def check_ecache_sweep(trace_length: int) -> List[str]:
    """E15: monotone improvement with size; 64K captures the locality."""
    from repro.harness.experiments import ecache_size_point

    sizes = (4096, 16384, 65536)
    rates = [ecache_size_point(size, references=trace_length)["miss_rate"]
             for size in sizes]
    failures = []
    if not all(a >= b for a, b in zip(rates, rates[1:])):
        failures.append(f"ecache: miss rate not monotone over {sizes}: "
                        f"{[round(r, 3) for r in rates]}")
    if not rates[2] < 0.5 * rates[0]:
        failures.append("ecache: 64K-word point no longer captures most of "
                        f"the locality ({rates[2]:.3f} vs {rates[0]:.3f})")
    return failures


def check_trace_replay_equivalence(trace_length: int) -> List[str]:
    """Trace replay: Table 1 replays to the live ordering (and the live
    numbers, exactly), and the Icache replay model matches the live cache."""
    import tempfile

    import numpy as np

    from repro.analysis.branch_schemes import table1
    from repro.analysis.trace_replay import table1_traced
    from repro.core.config import IcacheConfig
    from repro.icache import trace_sim
    from repro.icache.cache import simulate
    from repro.traces.store import TraceStore
    from repro.traces.synthetic import paper_regime_program

    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        live = table1()
        traced = table1_traced(store=TraceStore(root=tmp))
    for a, b in zip(live, traced):
        if (a.cycles, a.executions) != (b.cycles, b.executions):
            failures.append(
                f"trace replay: {a.scheme.name} diverges from live "
                f"(live {a.cycles}/{a.executions} cycles/execs, "
                f"traced {b.cycles}/{b.executions})")

    def ranking(evaluations):
        return [e.scheme.name
                for e in sorted(evaluations,
                                key=lambda e: (e.cycles_per_branch,
                                               e.scheme.name))]

    if ranking(live) != ranking(traced):
        failures.append(
            f"trace replay: Table 1 ordering diverges from live "
            f"(live {ranking(live)}, traced {ranking(traced)})")

    trace = np.fromiter(
        paper_regime_program().instruction_trace(trace_length),
        dtype=np.int64, count=trace_length)
    config = IcacheConfig()  # the paper organization
    live_stats = simulate(config, trace.tolist())
    replay_stats = trace_sim.replay(config, trace)
    if (live_stats.misses, live_stats.words_filled,
            live_stats.tag_allocations) != (
            replay_stats.misses, replay_stats.words_filled,
            replay_stats.tag_allocations):
        failures.append(
            f"trace replay: Icache replay diverges from the live cache "
            f"(live {live_stats}, replay {replay_stats})")
    return failures


CHECKS: List[Tuple[str, Callable[[int], List[str]]]] = [
    ("E1 Table 1 branch-scheme orderings", check_table1_orderings),
    ("E4 fetch-back miss-ratio halving", check_fetchback_ratio),
    ("E5 service time beats miss ratio", check_service_time),
    ("E15 Ecache size sweep", check_ecache_sweep),
    ("Trace-replay equivalence (Table 1 + Icache)",
     check_trace_replay_equivalence),
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="check_results",
        description="re-derive paper-shape orderings; exit 1 on regression")
    parser.add_argument("--trace-length", type=int,
                        default=DEFAULT_TRACE_LENGTH,
                        help="synthetic trace length for the cache checks")
    parser.add_argument("--bench-file", type=pathlib.Path, default=None,
                        metavar="PATH",
                        help="also validate the named sections of a bench "
                             "telemetry file (BENCH_pipeline.json)")
    parser.add_argument("--fuzz-file", type=pathlib.Path, default=None,
                        metavar="PATH",
                        help="also validate a fuzz campaign report "
                             "(FUZZ_campaign.json): structure, "
                             "completeness, and a clean verdict")
    parser.add_argument("--metrics-file", type=pathlib.Path, default=None,
                        metavar="PATH",
                        help="also audit an aggregated metrics summary "
                             "(METRICS_summary.json): counter-derived CPI "
                             "must equal the analysis CPI, and the "
                             "accounting identities must hold")
    parser.add_argument("--jit", dest="jit_file", type=pathlib.Path,
                        default=None, metavar="PATH",
                        help="also validate the 'jit' section of a bench "
                             "telemetry file: cycle-exact equivalence, "
                             "speedup floors, non-zero block coverage")
    parser.add_argument("--multi", dest="multi_file", type=pathlib.Path,
                        default=None, metavar="PATH",
                        help="also validate the 'multi' section of a bench "
                             "telemetry file: self-checks, node-count "
                             "invariant results, speedup(N=1)==1.0, "
                             "monotone bus contention, psieve N=4 speedup")
    parser.add_argument("--checkpoint", dest="checkpoint_file",
                        type=pathlib.Path, default=None, metavar="PATH",
                        help="also validate a checkpoint campaign report "
                             "(CHECKPOINT_campaign.json): restore "
                             "equivalence, chaos resumes > 0, and every "
                             "corruption case rejected")
    parser.add_argument("--service", dest="service_file",
                        type=pathlib.Path, default=None, metavar="PATH",
                        help="also validate the 'service' section of "
                             "BENCH_service.json: hit-speedup floor, "
                             "byte-identical cached-vs-recomputed "
                             "payloads, zero error responses")
    parser.add_argument("--service-campaign", dest="service_campaign",
                        type=pathlib.Path, default=None, metavar="PATH",
                        help="also validate a SERVICE_campaign.json chaos "
                             "report: every disturbance held with zero "
                             "wrong responses, breaker opened and "
                             "re-closed, drain lost nothing")
    args = parser.parse_args(argv)

    all_failures: List[str] = []
    if args.bench_file is not None:
        failures = check_bench_file(args.bench_file)
        status = "ok" if not failures else "FAIL"
        print(f"[{status:>4}] bench telemetry file structure")
        for failure in failures:
            print(f"       - {failure}")
        all_failures.extend(failures)
    if args.metrics_file is not None:
        failures = check_metrics_file(args.metrics_file)
        status = "ok" if not failures else "FAIL"
        print(f"[{status:>4}] metrics summary consistency")
        for failure in failures:
            print(f"       - {failure}")
        all_failures.extend(failures)
    if args.fuzz_file is not None:
        failures = check_fuzz_file(args.fuzz_file)
        status = "ok" if not failures else "FAIL"
        print(f"[{status:>4}] fuzz campaign report")
        for failure in failures:
            print(f"       - {failure}")
        all_failures.extend(failures)
    if args.jit_file is not None:
        failures = check_jit_section(args.jit_file)
        status = "ok" if not failures else "FAIL"
        print(f"[{status:>4}] translated fast path (jit) section")
        for failure in failures:
            print(f"       - {failure}")
        all_failures.extend(failures)
    if args.multi_file is not None:
        failures = check_multi_file(args.multi_file)
        status = "ok" if not failures else "FAIL"
        print(f"[{status:>4}] multiprocessor scaling section")
        for failure in failures:
            print(f"       - {failure}")
        all_failures.extend(failures)
    if args.checkpoint_file is not None:
        failures = check_checkpoint_file(args.checkpoint_file)
        status = "ok" if not failures else "FAIL"
        print(f"[{status:>4}] checkpoint recovery gates")
        for failure in failures:
            print(f"       - {failure}")
        all_failures.extend(failures)
    if args.service_file is not None:
        failures = check_service_section(args.service_file)
        status = "ok" if not failures else "FAIL"
        print(f"[{status:>4}] service benchmark section")
        for failure in failures:
            print(f"       - {failure}")
        all_failures.extend(failures)
    if args.service_campaign is not None:
        failures = check_service_campaign(args.service_campaign)
        status = "ok" if not failures else "FAIL"
        print(f"[{status:>4}] service chaos campaign")
        for failure in failures:
            print(f"       - {failure}")
        all_failures.extend(failures)
    for name, check in CHECKS:
        failures = check(args.trace_length)
        status = "ok" if not failures else "FAIL"
        print(f"[{status:>4}] {name}")
        for failure in failures:
            print(f"       - {failure}")
        all_failures.extend(failures)
    if all_failures:
        print(f"\n{len(all_failures)} paper-shape regression(s) detected",
              file=sys.stderr)
        return 1
    print("\nall paper-shape orderings hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
