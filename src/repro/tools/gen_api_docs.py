"""Generate ``docs/API.md`` from the public docstrings of ``repro``.

Walks every public module under ``src/repro/``, extracts module, class,
method, and function docstrings, and emits one deterministic Markdown
reference.  Members with no docstring are rendered as *undocumented* --
the generated file doubles as a coverage report (ruff's D1xx rules
enforce zero such entries for ``repro.telemetry`` and
``repro.harness``; see ``pyproject.toml``).

CI runs ``--check``: the committed ``docs/API.md`` must match what this
script generates, so the reference can never go stale.

Usage::

    PYTHONPATH=src python -m repro.tools.gen_api_docs [--check]
        [--output docs/API.md]
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import pathlib
import pkgutil
import re
import sys
from typing import Any, List, Optional, Tuple

#: src/repro/tools/gen_api_docs.py -> repository root
REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]
DEFAULT_OUTPUT = REPO_ROOT / "docs" / "API.md"

HEADER = """\
# `repro` API reference

<!-- GENERATED FILE - DO NOT EDIT.
     Regenerate with:
         PYTHONPATH=src python -m repro.tools.gen_api_docs
     CI runs this with --check and fails when the file is stale. -->

Public modules, classes, and functions of the MIPS-X reproduction,
extracted from docstrings.  See [DESIGN.md](../DESIGN.md) for the
architecture and [OBSERVABILITY.md](OBSERVABILITY.md) for the telemetry
layer this reference documents under `repro.telemetry`.
"""

#: memory addresses in default-value reprs would make output
#: nondeterministic
_ADDRESS = re.compile(r" at 0x[0-9a-fA-F]+")


def public_modules(package: str = "repro") -> List[str]:
    """Sorted names of every public (non-underscore) module."""
    root = importlib.import_module(package)
    names = [package]
    for info in pkgutil.walk_packages(root.__path__, package + "."):
        if any(part.startswith("_") for part in info.name.split(".")[1:]):
            continue
        names.append(info.name)
    return sorted(names)


def _signature(obj: Any) -> str:
    """``inspect.signature`` text, sanitised for determinism."""
    try:
        text = str(inspect.signature(obj))
    except (ValueError, TypeError):
        return "(...)"
    return _ADDRESS.sub(" at ...", text)


def _first_paragraph(doc: Optional[str]) -> str:
    """The docstring's first paragraph, joined to one line."""
    if not doc:
        return ""
    lines: List[str] = []
    for line in inspect.cleandoc(doc).splitlines():
        if not line.strip():
            break
        lines.append(line.strip())
    return " ".join(lines)


def _doc_line(doc: Optional[str]) -> str:
    """One-line summary, or the *undocumented* coverage marker."""
    summary = _first_paragraph(doc)
    return summary if summary else "*undocumented*"


def _own_members(module: Any) -> List[Tuple[int, str, Any]]:
    """(source line, name, object) for public defs owned by ``module``.

    Re-exports (``__module__`` elsewhere) are skipped so every symbol is
    documented exactly once, in its defining module.
    """
    members = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue
        try:
            line = inspect.getsourcelines(obj)[1]
        except (OSError, TypeError):
            line = 0
        members.append((line, name, obj))
    return sorted(members, key=lambda entry: (entry[0], entry[1]))


def _class_section(name: str, cls: type) -> List[str]:
    lines = [f"### class `{name}{_signature(cls)}`", "",
             _doc_line(cls.__doc__), ""]
    methods = []
    for attr_name, attr in sorted(vars(cls).items()):
        if attr_name.startswith("_"):
            continue
        if isinstance(attr, property):
            doc = _doc_line(attr.fget.__doc__ if attr.fget else None)
            methods.append(f"- `{attr_name}` (property) -- {doc}")
        elif isinstance(attr, (staticmethod, classmethod)):
            fn = attr.__func__
            methods.append(f"- `{attr_name}{_signature(fn)}` -- "
                           f"{_doc_line(fn.__doc__)}")
        elif inspect.isfunction(attr):
            methods.append(f"- `{attr_name}{_signature(attr)}` -- "
                           f"{_doc_line(attr.__doc__)}")
    if methods:
        lines.extend(methods)
        lines.append("")
    return lines


def generate(package: str = "repro") -> str:
    """Render the full API reference Markdown document."""
    out: List[str] = [HEADER]
    undocumented = 0
    for module_name in public_modules(package):
        module = importlib.import_module(module_name)
        out.append(f"## `{module_name}`")
        out.append("")
        out.append(_doc_line(module.__doc__))
        out.append("")
        for _, name, obj in _own_members(module):
            if inspect.isclass(obj):
                out.extend(_class_section(name, obj))
            else:
                out.append(f"### `{name}{_signature(obj)}`")
                out.append("")
                out.append(_doc_line(obj.__doc__))
                out.append("")
    text = "\n".join(out)
    undocumented = text.count("*undocumented*")
    coverage = ["---", "",
                f"*{undocumented} undocumented public member(s) remain "
                "(search for `*undocumented*` above; `repro.telemetry` "
                "and `repro.harness` are lint-enforced to zero by ruff "
                "D1xx).*", ""]
    return text + "\n".join(coverage)


def main(argv=None) -> int:
    """CLI entry: write ``docs/API.md`` or verify it is current."""
    parser = argparse.ArgumentParser(
        prog="gen_api_docs",
        description="generate docs/API.md from repro docstrings")
    parser.add_argument("--output", type=pathlib.Path,
                        default=DEFAULT_OUTPUT, metavar="PATH",
                        help="target file (default: docs/API.md)")
    parser.add_argument("--check", action="store_true",
                        help="do not write; exit 1 if the file is stale")
    args = parser.parse_args(argv)

    text = generate()
    if args.check:
        if not args.output.exists():
            print(f"{args.output} does not exist -- run "
                  "`PYTHONPATH=src python -m repro.tools.gen_api_docs`",
                  file=sys.stderr)
            return 1
        if args.output.read_text() != text:
            print(f"{args.output} is stale -- regenerate with "
                  "`PYTHONPATH=src python -m repro.tools.gen_api_docs`",
                  file=sys.stderr)
            return 1
        print(f"{args.output} is current")
        return 0
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(text)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
