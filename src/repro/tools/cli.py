"""Command-line front end: run, disassemble, compile, visualize.

Usage::

    python -m repro.tools.cli run program.s [--stats] [--trace N]
    python -m repro.tools.cli compile program.spl [--emit-asm] [--run]
    python -m repro.tools.cli disasm program.s
    python -m repro.tools.cli workload sieve [--stats]
    python -m repro.tools.cli trace sieve [--output TRACE.json]
    python -m repro.tools.cli trace psieve --nodes 4 [--bus-latency L]
    python -m repro.tools.cli bench [--quick] [--workers N] [--multi]
    python -m repro.tools.cli faults [--seeds N] [--quick] [--chaos R]
    python -m repro.tools.cli faults --multi-nodes 4 [--seeds N] [--quick]
    python -m repro.tools.cli fuzz [--seeds N] [--quick] [--max-seconds S]
    python -m repro.tools.cli run program.s --checkpoint-every 100000
    python -m repro.tools.cli run program.s --resume --checkpoint-id ID
    python -m repro.tools.cli checkpoint [--fuzz-seeds N] [--quick]
    python -m repro.tools.cli serve [--port P] [--workers N]
    python -m repro.tools.cli client run '{"workload": "fib"}'
    python -m repro.tools.cli service-bench [--quick] [--clients N]
    python -m repro.tools.cli service-chaos [--quick] [--seed N]

``run`` executes assembly on the paper-configuration machine; ``compile``
sends SPL source through the compiler + reorganizer; ``workload`` runs a
registered benchmark.  ``--trace N`` prints a pipeline diagram of the
first N cycles.  ``trace`` runs a workload under the telemetry cycle
tracer (:mod:`repro.telemetry`) and writes Chrome/Perfetto trace JSON
for ``ui.perfetto.dev`` (see ``docs/OBSERVABILITY.md``).  ``bench``
runs the benchmark telemetry suite (core
cycles/sec plus the parallel experiment sweep) and writes
``BENCH_pipeline.json`` at the repo root; ``bench --multi`` adds the
multiprocessor scaling sweep (nodes x bus latency x invalidation) as the
payload's ``multi`` section.  ``trace --nodes N`` runs a parallel
workload on an N-node :class:`~repro.multi.system.MultiMachine` and
exports one Perfetto process per node so cross-node stall interleaving
(including bus-wait spans) is visible on one timeline.  ``faults`` runs
a seeded fault-injection campaign (see :mod:`repro.faults`) across the
parallel runner and writes ``FAULTS_campaign.json``; ``faults
--multi-nodes N`` instead runs the node-level multiprocessor campaign
(:mod:`repro.faults.multi`), writing ``FAULTS_multi.json``.  ``fuzz`` runs a seeded
differential-fuzzing campaign (see :mod:`repro.fuzz`) cross-checking the
golden, pipeline, and trace-replay models on generated programs, writing
``FUZZ_campaign.json``.

``run``/``compile``/``workload`` accept ``--checkpoint-every K`` to
snapshot the machine every K cycles into the content-addressed store
under ``.trace_cache/checkpoints/`` (see :mod:`repro.checkpoint`), and
``--resume`` to continue a crashed run from its latest valid snapshot
(``--checkpoint-id`` names the ladder).  ``checkpoint`` runs the
standing recovery gates -- restore equivalence, chaos resume, snapshot
corruption -- and writes ``CHECKPOINT_campaign.json``.

``serve`` starts the simulation-as-a-service job server
(:mod:`repro.service`) on local TCP and drains gracefully on
SIGTERM/SIGINT; ``client`` sends it one request and prints the JSON
response.  ``service-bench`` runs the zipf-mix load generator against
an in-process server and writes ``BENCH_service.json``;
``service-chaos`` runs the six-disturbance resilience campaign
(worker kill, cache corruption, overload, malformed frames, slow
client, drain) and writes ``SERVICE_campaign.json``.

The campaign commands (``faults``, ``fuzz``, ``checkpoint``,
``service-chaos``) share one exit-code taxonomy, documented in full in
the README:

* **0** -- campaign ran and found nothing wrong;
* **1** -- harness failure: a job errored/timed out/crashed (the
  infrastructure broke, nothing is known about the models);
* **2** -- a classified finding: an invariant violation (``faults``),
  an unexplained model divergence (``fuzz``), a recovery-gate failure
  (``checkpoint``), or a disturbance that was not absorbed
  (``service-chaos``).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional

from repro.asm import assemble, listing, parse
from repro.coproc import Fpu
from repro.core import Machine, MachineConfig, perfect_memory_config
from repro.lang import compile_spl
from repro.tools.pipeview import PipelineTracer


def _print_stats(machine: Machine) -> None:
    # read the audited telemetry snapshot, not raw stat attributes
    snap = machine.metrics().snapshot()
    cpi = snap["pipeline.cpi"]
    print(f"cycles        {snap['pipeline.cycles']}")
    print(f"instructions  {snap['pipeline.instructions.retired']} "
          f"({snap['pipeline.instructions.noops']} no-ops, "
          f"{snap['pipeline.instructions.squashed']} squashed)")
    print(f"CPI           {cpi:.3f}")
    print(f"branches      {snap['pipeline.branch.executed']} "
          f"({snap['pipeline.branch.taken']} taken), "
          f"jumps {snap['pipeline.jumps']}")
    print(f"loads/stores  {snap['pipeline.mem.loads']}/"
          f"{snap['pipeline.mem.stores']}")
    print(f"icache        {snap['icache.miss_rate']:.1%} miss rate, "
          f"{snap['pipeline.stall.icache_miss']} stall cycles")
    print(f"ecache        {snap['ecache.miss_rate']:.1%} miss rate, "
          f"{snap['pipeline.stall.ecache_late_miss']} data stall cycles")
    if snap.get("core.translate.entries.taken"):
        coverage = (snap["core.translate.cycles"] / snap["pipeline.cycles"]
                    if snap["pipeline.cycles"] else 0.0)
        print(f"jit           {snap['core.translate.blocks.compiled']} "
              f"blocks, {snap['core.translate.entries.taken']} entries, "
              f"{coverage:.1%} cycle coverage")
    print(f"@20 MHz       {20.0 / cpi if cpi else 0.0:.1f} sustained MIPS")


def _run_machine(program, args) -> int:
    config = perfect_memory_config() if args.ideal else MachineConfig()
    if args.jit:
        config = dataclasses.replace(config, jit=True)
    machine = Machine(config)
    machine.attach_coprocessor(Fpu())
    machine.load_program(program)
    translator = machine.pipeline._translator
    if args.jit_trace and translator is not None:
        translator.record_spans = True
    if args.trace:
        tracer = PipelineTracer(machine)
        tracer.step(args.trace)
        print(tracer.render())
        print()
    if args.checkpoint_every or args.resume:
        from repro.checkpoint import SnapshotStore, run_with_checkpoints

        store = SnapshotStore()
        run_id = args.checkpoint_id or "cli"
        ckpt = run_with_checkpoints(
            machine, store, run_id, max_cycles=args.max_cycles,
            every_cycles=args.checkpoint_every or 250_000,
            resume=args.resume)
        print(f"checkpoint: {ckpt.snapshots} snapshot(s), "
              f"{ckpt.resumes} resume(s), {ckpt.bytes_written} bytes "
              f"under {store.run_dir(run_id)}")
    else:
        machine.run(args.max_cycles)
    if args.jit_trace and translator is not None:
        from repro.telemetry import write_jit_trace

        write_jit_trace(args.jit_trace, translator.spans)
        print(f"jit trace written to {args.jit_trace} "
              f"({len(translator.spans)} block activations)")
    if machine.console.values:
        print("console:", machine.console.values)
    if machine.console.text:
        print("console text:", machine.console.text)
    if not machine.halted:
        print(f"warning: did not halt within {args.max_cycles} cycles",
              file=sys.stderr)
    if args.stats:
        _print_stats(machine)
    return 0 if machine.halted else 1


def cmd_run(args) -> int:
    with open(args.file) as handle:
        source = handle.read()
    return _run_machine(assemble(source), args)


def cmd_compile(args) -> int:
    with open(args.file) as handle:
        source = handle.read()
    compilation = compile_spl(source)
    if args.emit_asm:
        print(compilation.asm_text)
        return 0
    if args.listing:
        print(listing(compilation.program()))
        return 0
    return _run_machine(compilation.program(), args)


def cmd_disasm(args) -> int:
    with open(args.file) as handle:
        source = handle.read()
    print(listing(assemble(source)))
    return 0


def cmd_workload(args) -> int:
    from repro.workloads import get

    workload = get(args.name)
    return _run_machine(workload.program(), args)


def _cmd_trace_multi(args) -> int:
    """``trace --nodes N``: one Perfetto process per node."""
    from repro.multi import MultiMachine
    from repro.telemetry import Metrics, write_multi_trace
    from repro.workloads.parallel import parallel_program

    try:
        program = parallel_program(args.target, args.nodes)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 1
    system = MultiMachine(args.nodes, MachineConfig(),
                          bus_latency=args.bus_latency)
    system.load_program(program)
    metrics = Metrics()
    tracers = system.attach_tracers(capacity=args.capacity, metrics=metrics)
    system.run(args.max_cycles)
    system.metrics(metrics)
    write_multi_trace(args.output, tracers)
    records = sum(len(t.records) for t in tracers)
    spans = sum(len(t.stall_spans) for t in tracers)
    print(f"multi trace written to {args.output} ({args.nodes} nodes, "
          f"{records} instruction records, {spans} stall spans, "
          f"bus: {system.bus.acquisitions} acquisitions / "
          f"{system.bus.contention_cycles} contention cycles) -- open in "
          "ui.perfetto.dev")
    if args.metrics_output:
        with open(args.metrics_output, "w", encoding="utf-8") as handle:
            handle.write(metrics.to_json())
            handle.write("\n")
        print(f"metrics written to {args.metrics_output}")
    if not system.all_halted:
        print(f"warning: did not halt within {args.max_cycles} cycles",
              file=sys.stderr)
        return 1
    return 0


def cmd_trace(args) -> int:
    import json
    import os

    from repro.telemetry import CycleTracer, Metrics, write_trace

    if args.nodes:
        return _cmd_trace_multi(args)
    config = perfect_memory_config() if args.ideal else MachineConfig()
    machine = Machine(config)
    machine.attach_coprocessor(Fpu())
    if os.path.exists(args.target):
        with open(args.target) as handle:
            source = handle.read()
        if args.target.endswith(".spl"):
            machine.load_program(compile_spl(source).program())
        else:
            machine.load_program(assemble(source))
    else:
        from repro.workloads import get

        machine.load_program(get(args.target).program())
    metrics = Metrics()
    tracer = CycleTracer(machine, capacity=args.capacity, metrics=metrics)
    tracer.run(args.max_cycles)
    machine.metrics(metrics)
    write_trace(args.output, tracer)
    print(f"trace written to {args.output} "
          f"({len(tracer.records)} instruction records, "
          f"{len(tracer.stall_spans)} stall spans, "
          f"{len(tracer.instants)} events) -- open in ui.perfetto.dev")
    if args.metrics_output:
        with open(args.metrics_output, "w", encoding="utf-8") as handle:
            handle.write(metrics.to_json())
            handle.write("\n")
        print(f"metrics written to {args.metrics_output}")
    if args.stats:
        _print_stats(machine)
    if not machine.halted:
        print(f"warning: did not halt within {args.max_cycles} cycles",
              file=sys.stderr)
        return 1
    return 0


def cmd_bench(args) -> int:
    from repro.harness.bench import collect, format_summary

    multi_nodes = None
    if args.multi_nodes:
        multi_nodes = tuple(int(part) for part
                            in args.multi_nodes.split(","))
    payload = collect(quick=args.quick, workers=args.workers,
                      parallel=not args.serial_only and not args.traced_only,
                      serial_baseline=(not args.no_serial_baseline
                                       and not args.traced_only
                                       and not args.multi_only),
                      timeout=args.timeout,
                      output=args.output,
                      traced=not args.no_traced,
                      trace_reuse=not args.no_trace_reuse,
                      metrics_output=args.metrics_output,
                      multi=args.multi or bool(args.multi_nodes),
                      multi_nodes=multi_nodes,
                      multi_only=args.multi_only)
    print(format_summary(payload))
    failed = [job_id for job_id, row in payload["experiments"].items()
              if row["status"] != "ok"]
    failed += payload.get("multi", {}).get("failures", [])
    if failed:
        print(f"failed jobs: {', '.join(sorted(failed))}", file=sys.stderr)
    return 1 if failed else 0


def cmd_faults(args) -> int:
    if args.multi_nodes:
        return _cmd_faults_multi(args)
    from repro.faults.campaign import format_summary, run_campaign

    payload = run_campaign(seeds=args.seeds,
                           workers=args.workers,
                           quick=args.quick,
                           parallel=not args.serial,
                           chaos_rate=args.chaos,
                           chaos_seed=args.chaos_seed,
                           output=args.output)
    print(format_summary(payload))
    print(f"report written to {payload['report_path']}")
    summary = payload["summary"]
    if summary["unhandled_jobs"]:
        print(f"{summary['unhandled_jobs']} campaign job(s) failed in the "
              "harness (see report)", file=sys.stderr)
        return 1
    if summary["violated"]:
        print(f"{summary['violated']} invariant violation(s) classified "
              "(see report)", file=sys.stderr)
        return 2
    return 0


def _cmd_faults_multi(args) -> int:
    """``faults --multi-nodes N``: the node-level multiprocessor campaign
    (same 0/1/2 exit taxonomy as the single-node campaign)."""
    from repro.faults.multi import format_summary, run_multi_campaign

    payload = run_multi_campaign(seeds=args.seeds,
                                 nodes=args.multi_nodes,
                                 workers=args.workers,
                                 quick=args.quick,
                                 parallel=not args.serial,
                                 output=args.output)
    print(format_summary(payload))
    print(f"report written to {payload['report_path']}")
    summary = payload["summary"]
    if summary["unhandled_jobs"]:
        print(f"{summary['unhandled_jobs']} campaign job(s) failed in the "
              "harness (see report)", file=sys.stderr)
        return 1
    if summary["violated"]:
        print(f"{summary['violated']} invariant violation(s) classified "
              "(see report)", file=sys.stderr)
        return 2
    return 0


def cmd_fuzz(args) -> int:
    from repro.fuzz.campaign import exit_code, format_summary, run_campaign

    modes = args.modes.split(",") if args.modes else ("isa", "lang")
    payload = run_campaign(seeds=args.seeds,
                           modes=tuple(modes),
                           quick=args.quick,
                           workers=args.workers,
                           parallel=not args.serial,
                           max_seconds=args.max_seconds,
                           chaos_rate=args.chaos,
                           chaos_seed=args.chaos_seed,
                           mutation=args.mutate,
                           output=args.output,
                           corpus_dir=args.corpus_dir,
                           write_corpus=not args.no_corpus)
    print(format_summary(payload))
    print(f"report written to {payload['report_path']}")
    code = exit_code(payload)
    if code == 2 and args.mutate:
        print(f"planted mutation {args.mutate!r} was NOT caught -- the "
              "oracle failed its self-test", file=sys.stderr)
    elif code == 2:
        print(f"{payload['totals']['diverged']} unexplained model "
              "divergence(s) -- shrunk repros in the report and corpus",
              file=sys.stderr)
    elif code == 1:
        print(f"{payload['totals']['harness_failures']} campaign job(s) "
              "failed in the harness (see report)", file=sys.stderr)
    return code


def cmd_checkpoint(args) -> int:
    from repro.checkpoint.campaign import (exit_code, format_summary,
                                           run_campaign)

    payload = run_campaign(fuzz_seeds=args.fuzz_seeds,
                           workers=args.workers,
                           parallel=not args.serial,
                           quick=args.quick,
                           output=args.output)
    print(format_summary(payload))
    print(f"report written to {payload['report_path']}")
    code = exit_code(payload)
    if code == 2:
        print("checkpoint recovery gate failed -- a restore diverged, a "
              "killed job did not resume, or corruption was accepted "
              "(see report)", file=sys.stderr)
    elif code == 1:
        print("campaign job(s) failed in the harness (see report)",
              file=sys.stderr)
    return code


def cmd_serve(args) -> int:
    import asyncio
    import signal

    from repro.service.server import ServiceConfig, ServiceServer

    async def _serve() -> int:
        config = ServiceConfig(host=args.host, port=args.port,
                               max_workers=args.workers,
                               cache_entries=args.cache_entries)
        server = ServiceServer(config)
        try:
            await server.start()
        except OSError as exc:
            print(f"error: cannot listen on {args.host}:{args.port}: "
                  f"{exc}", file=sys.stderr)
            return 1
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        print(f"repro service listening on {config.host}:{server.port} "
              "(SIGTERM/SIGINT drains)")
        await stop.wait()
        print("draining: listener closed, finishing accepted jobs ...")
        await server.drain()
        snap = server.snapshot()
        await server.close()
        stats = snap["service"]
        print(f"drained clean: {stats['requests']} requests, "
              f"{stats['responses_ok']} ok / "
              f"{stats['responses_error']} error / "
              f"{stats['shed']} shed; cache "
              f"{snap['cache']['hits']} hits / "
              f"{snap['cache']['misses']} misses")
        return 0

    return asyncio.run(_serve())


def cmd_client(args) -> int:
    import asyncio
    import json

    from repro.service.server import ServiceClient

    try:
        params = json.loads(args.params) if args.params else {}
    except json.JSONDecodeError as exc:
        print(f"error: params is not valid JSON: {exc}", file=sys.stderr)
        return 1
    if not isinstance(params, dict):
        print("error: params must be a JSON object", file=sys.stderr)
        return 1

    async def _request() -> dict:
        client = ServiceClient(host=args.host, port=args.port)
        await client.connect()
        try:
            extra = {"no_cache": True} if args.no_cache else {}
            return await client.request(args.kind, params, **extra)
        finally:
            await client.close()

    try:
        response = asyncio.run(_request())
    except (ConnectionError, OSError) as exc:
        print(f"error: cannot reach service on {args.host}:{args.port}: "
              f"{exc}", file=sys.stderr)
        return 1
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0 if response.get("status") == "ok" else 1


def cmd_service_bench(args) -> int:
    from repro.service.loadgen import run_loadgen

    try:
        payload = run_loadgen(clients=args.clients,
                              requests_per_client=args.requests,
                              catalog_size=args.catalog,
                              zipf_s=args.zipf,
                              seed=args.seed,
                              quick=args.quick,
                              max_workers=args.workers,
                              output=args.output)
    except Exception as exc:                     # noqa: BLE001 -- taxonomy
        print(f"service-bench harness failure: {exc}", file=sys.stderr)
        return 1
    section = payload["service"]
    latency = section["latency_ms"]
    print(f"service-bench: {section['requests_sent']} requests from "
          f"{section['clients']} clients over {section['catalog_size']} "
          f"catalog entries in {section['wall_s']}s")
    print(f"  hit rate {section['hit_rate']:.1%}, shed rate "
          f"{section['shed_rate']:.1%}, p50 {latency['p50']:.3f} ms, "
          f"p99 {latency['p99']:.3f} ms")
    print(f"  hit p50 {latency['hit_p50']:.3f} ms vs miss p50 "
          f"{latency['miss_p50']:.3f} ms -- {section['hit_speedup_p50']}x")
    equivalence = section["equivalence"]
    print(f"  equivalence: {equivalence['checked']} cached-vs-recomputed "
          f"payloads compared, {equivalence['mismatches']} mismatches")
    print(f"report written to {args.output}")
    bad = (section["responses"]["error"] or equivalence["mismatches"])
    if bad:
        print("service-bench found wrong answers (see report)",
              file=sys.stderr)
        return 2
    return 0


def cmd_service_chaos(args) -> int:
    from repro.service.chaos import run_campaign

    try:
        report = run_campaign(quick=args.quick, seed=args.seed,
                              output=args.output)
    except Exception as exc:                     # noqa: BLE001 -- taxonomy
        print(f"service-chaos harness failure: {exc}", file=sys.stderr)
        return 1
    summary = report["summary"]
    for name, row in report["disturbances"].items():
        verdict = "held" if row["held"] else "NOT HELD"
        print(f"  {name:<18} {verdict:<9} wrong={row['wrong']} "
              f"p99={row['p99_ms']:.1f}ms")
    print(f"service-chaos: wrong_responses={summary['wrong_responses']} "
          f"breaker_opened={summary['breaker_opened']} "
          f"breaker_reclosed={summary['breaker_reclosed']} "
          f"drain_lost={summary['drain_lost']} "
          f"worst_p99={summary['worst_p99_ms']:.1f}ms")
    print(f"report written to {args.output}")
    code = int(summary["exit_code"])
    if code == 2:
        print("a disturbance was not absorbed (see report)",
              file=sys.stderr)
    return code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="MIPS-X reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--stats", action="store_true",
                       help="print pipeline statistics")
        p.add_argument("--ideal", action="store_true",
                       help="perfect-memory machine (pipeline only)")
        p.add_argument("--trace", type=int, default=0, metavar="N",
                       help="pipeline diagram of the first N cycles")
        p.add_argument("--max-cycles", type=int, default=10_000_000)
        p.add_argument("--jit", action="store_true",
                       help="enable the translated fast path (cycle-exact; "
                            "off by default)")
        p.add_argument("--jit-trace", default=None, metavar="PATH",
                       help="with --jit: write translated-block activation "
                            "spans as Perfetto trace JSON")
        p.add_argument("--checkpoint-every", type=int, default=0,
                       metavar="K",
                       help="snapshot the machine every K cycles into "
                            ".trace_cache/checkpoints/ (0 = off)")
        p.add_argument("--resume", action="store_true",
                       help="resume from the latest valid snapshot of "
                            "--checkpoint-id before running")
        p.add_argument("--checkpoint-id", default=None, metavar="ID",
                       help="snapshot ladder name (default: cli)")

    p_run = sub.add_parser("run", help="assemble and run a .s file")
    p_run.add_argument("file")
    common(p_run)
    p_run.set_defaults(func=cmd_run)

    p_compile = sub.add_parser("compile",
                               help="compile and run an SPL source file")
    p_compile.add_argument("file")
    p_compile.add_argument("--emit-asm", action="store_true",
                           help="print the naive assembly and exit")
    p_compile.add_argument("--listing", action="store_true",
                           help="print the reorganized listing and exit")
    common(p_compile)
    p_compile.set_defaults(func=cmd_compile)

    p_disasm = sub.add_parser("disasm", help="assemble and list a .s file")
    p_disasm.add_argument("file")
    p_disasm.set_defaults(func=cmd_disasm)

    p_workload = sub.add_parser("workload", help="run a registered workload")
    p_workload.add_argument("name")
    common(p_workload)
    p_workload.set_defaults(func=cmd_workload)

    p_trace = sub.add_parser(
        "trace",
        help="run under the cycle tracer and export Perfetto trace JSON",
        description="Run a registered workload (or a .s/.spl file) under "
                    "the telemetry cycle tracer and write a Chrome/"
                    "Perfetto trace_event JSON of instruction lifecycles "
                    "per pipestage, stall spans, and squash/exception "
                    "events.  Open the output in ui.perfetto.dev; see "
                    "docs/OBSERVABILITY.md for a reading guide.")
    p_trace.add_argument("target",
                         help="workload name, or path to a .s/.spl file")
    p_trace.add_argument("--output", default="TRACE_pipeline.json",
                         metavar="PATH",
                         help="trace file (default: TRACE_pipeline.json)")
    p_trace.add_argument("--metrics-output", default=None, metavar="PATH",
                         help="also write the metrics snapshot JSON here")
    p_trace.add_argument("--capacity", type=int, default=65536,
                         help="ring-buffer capacity: keep the last N "
                              "instruction records (default 65536)")
    p_trace.add_argument("--ideal", action="store_true",
                         help="perfect-memory machine (pipeline only)")
    p_trace.add_argument("--stats", action="store_true",
                         help="print pipeline statistics")
    p_trace.add_argument("--nodes", type=int, default=0, metavar="N",
                         help="run a parallel workload on an N-node "
                              "multiprocessor: one Perfetto process per "
                              "node (target must be psieve/pintmm/pring)")
    p_trace.add_argument("--bus-latency", type=int, default=0, metavar="L",
                         help="extra global cycles the shared bus stays "
                              "held after each acquisition (with --nodes)")
    p_trace.add_argument("--max-cycles", type=int, default=10_000_000)
    p_trace.set_defaults(func=cmd_trace)

    p_bench = sub.add_parser(
        "bench", help="benchmark telemetry: core cycles/sec + experiment "
                      "sweep wall-clock, written to BENCH_pipeline.json")
    p_bench.add_argument("--quick", action="store_true",
                         help="reduced grid and shorter traces (CI smoke)")
    p_bench.add_argument("--workers", type=int, default=None,
                         help="parallel worker processes (default: CPUs)")
    p_bench.add_argument("--serial-only", action="store_true",
                         help="skip the parallel sweep")
    p_bench.add_argument("--no-serial-baseline", action="store_true",
                         help="skip the serial sweep (no speedup figure)")
    p_bench.add_argument("--timeout", type=float, default=None,
                         help="per-job timeout in seconds")
    p_bench.add_argument("--no-traced", action="store_true",
                         help="skip the capture-once/replay-many trace "
                              "sweeps")
    p_bench.add_argument("--traced-only", action="store_true",
                         help="run only the trace-replay sweeps (no live "
                              "parallel/serial passes)")
    p_bench.add_argument("--no-trace-reuse", action="store_true",
                         help="ignore cached traces and re-capture "
                              "(escape hatch)")
    p_bench.add_argument("--output", default=None, metavar="PATH",
                         help="telemetry file (default: BENCH_pipeline.json "
                              "at the repo root)")
    p_bench.add_argument("--metrics-output", default=None, metavar="PATH",
                         help="aggregated metrics file (default: "
                              "METRICS_summary.json at the repo root)")
    p_bench.add_argument("--multi", action="store_true",
                         help="also run the multiprocessor scaling sweep "
                              "(nodes x bus latency x invalidation) and "
                              "write it as the payload's 'multi' section")
    p_bench.add_argument("--multi-nodes", default=None, metavar="N[,N]",
                         help="comma-separated node counts for the multi "
                              "sweep (default 1..10; implies --multi)")
    p_bench.add_argument("--multi-only", action="store_true",
                         help="run only the multi sweep (plus the core "
                              "probe): skip the uniprocessor sweeps and "
                              "trace replays")
    p_bench.set_defaults(func=cmd_bench)

    p_faults = sub.add_parser(
        "faults",
        help="seeded fault-injection campaign: differential invariant "
             "checking across the parallel runner, written to "
             "FAULTS_campaign.json",
        description="Inject seeded hardware-fault plans into pipeline "
                    "runs and check architectural invariants against a "
                    "clean differential run.  Exit codes: 0 = every fault "
                    "was absorbed or classified benign, 1 = a campaign "
                    "job failed in the harness (infrastructure, not a "
                    "finding), 2 = classified invariant violation.")
    p_faults.add_argument("--seeds", type=int, default=32,
                          help="number of seeded fault plans (default 32)")
    p_faults.add_argument("--quick", action="store_true",
                          help="fewer events per plan (CI smoke)")
    p_faults.add_argument("--workers", type=int, default=None,
                          help="parallel worker processes (default: CPUs)")
    p_faults.add_argument("--serial", action="store_true",
                          help="run campaign jobs in-process")
    p_faults.add_argument("--chaos", type=float, default=0.0, metavar="RATE",
                          help="kill this fraction of first-attempt workers "
                               "mid-job (chaos test of the runner)")
    p_faults.add_argument("--chaos-seed", type=int, default=0,
                          help="seed for the chaos kill selection")
    p_faults.add_argument("--output", default=None, metavar="PATH",
                          help="report file (default: FAULTS_campaign.json "
                               "at the repo root)")
    p_faults.add_argument("--multi-nodes", type=int, default=0, metavar="N",
                          help="run the node-level multiprocessor campaign "
                               "on N-node systems instead (flip one node's "
                               "Icache valid bits / corrupt its Ecache "
                               "tags mid-run; report: FAULTS_multi.json)")
    p_faults.set_defaults(func=cmd_faults)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing campaign: cross-check golden, pipeline "
             "and trace-replay models on seeded generated programs, "
             "written to FUZZ_campaign.json",
        description="Generate seeded random programs (ISA instruction "
                    "sequences and SPL sources), run each on the golden "
                    "simulator (naive code) and the pipeline (reorganized "
                    "code), replay the captured cache streams through the "
                    "trace models, and compare everything observable.  "
                    "Divergent programs are auto-shrunk to a minimal repro "
                    "and filed under fuzz_corpus/.  Campaigns journal "
                    "every finished seed and resume from the journal when "
                    "rerun.  Exit codes: 0 = all models agree, 1 = a "
                    "campaign job failed in the harness (infrastructure, "
                    "not a finding), 2 = unexplained model divergence.")
    p_fuzz.add_argument("--seeds", type=int, default=50,
                        help="seeds per mode (default 50)")
    p_fuzz.add_argument("--modes", default=None, metavar="M[,M]",
                        help="comma-separated modes: isa, lang "
                             "(default both)")
    p_fuzz.add_argument("--quick", action="store_true",
                        help="smaller generated programs (CI smoke)")
    p_fuzz.add_argument("--workers", type=int, default=None,
                        help="parallel worker processes (default: CPUs)")
    p_fuzz.add_argument("--serial", action="store_true",
                        help="run campaign jobs in-process")
    p_fuzz.add_argument("--max-seconds", type=float, default=None,
                        help="wall-clock budget; finished seeds are "
                             "journaled, rerun the same command to resume")
    p_fuzz.add_argument("--chaos", type=float, default=0.0, metavar="RATE",
                        help="kill this fraction of first-attempt workers "
                             "mid-job (chaos test of the runner)")
    p_fuzz.add_argument("--chaos-seed", type=int, default=0,
                        help="seed for the chaos kill selection")
    p_fuzz.add_argument("--mutate", default=None, metavar="NAME",
                        help="dev-only: plant a known golden-model bug "
                             "(see repro.fuzz.mutation); divergences are "
                             "then expected and do not fail the campaign")
    p_fuzz.add_argument("--output", default=None, metavar="PATH",
                        help="report file (default: FUZZ_campaign.json at "
                             "the repo root)")
    p_fuzz.add_argument("--corpus-dir", default=None, metavar="DIR",
                        help="where to file shrunk repros (default: "
                             "fuzz_corpus/ at the repo root)")
    p_fuzz.add_argument("--no-corpus", action="store_true",
                        help="do not file repros for divergences")
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_ckpt = sub.add_parser(
        "checkpoint",
        help="checkpoint/restore recovery gates: restore equivalence, "
             "chaos resume, snapshot corruption; written to "
             "CHECKPOINT_campaign.json",
        description="Run the standing crash-recovery gates: snapshot "
                    "mid-run + restore + finish must be bit-identical to "
                    "an uninterrupted run (workloads, a 4-node "
                    "multiprocessor, and fuzz seeds; JIT off and on); "
                    "SIGKILLed checkpointed workers must resume from "
                    "their last snapshot and merge byte-identical; "
                    "corrupted/truncated/mis-versioned snapshots must be "
                    "rejected with named errors and fall back a "
                    "generation.  Exit codes: 0 = all gates green, 1 = a "
                    "campaign job failed in the harness, 2 = a recovery "
                    "gate failed.")
    p_ckpt.add_argument("--fuzz-seeds", type=int, default=50,
                        help="fuzz seeds in the equivalence gate "
                             "(default 50)")
    p_ckpt.add_argument("--quick", action="store_true",
                        help="few fuzz seeds (CI smoke)")
    p_ckpt.add_argument("--workers", type=int, default=None,
                        help="parallel worker processes (default: CPUs)")
    p_ckpt.add_argument("--serial", action="store_true",
                        help="run equivalence jobs in-process")
    p_ckpt.add_argument("--output", default=None, metavar="PATH",
                        help="report file (default: "
                             "CHECKPOINT_campaign.json at the repo root)")
    p_ckpt.set_defaults(func=cmd_checkpoint)

    p_serve = sub.add_parser(
        "serve",
        help="start the simulation-as-a-service job server on local TCP "
             "(content-addressed cache, admission control, circuit "
             "breaker; SIGTERM drains)",
        description="Serve assemble/run/sweep/trace/fault/fuzz jobs over "
                    "a length-prefixed JSON protocol, fronted by a "
                    "content-addressed result cache and a token-bucket "
                    "admission controller.  SIGTERM/SIGINT stops the "
                    "listener, finishes every accepted job, then exits "
                    "0.  Exit 1 means the server could not start.")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="TCP port (default 0 = ephemeral, printed "
                              "at startup)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="Runner worker processes (default 2)")
    p_serve.add_argument("--cache-entries", type=int, default=4096,
                         help="result-cache capacity (default 4096)")
    p_serve.set_defaults(func=cmd_serve)

    p_client = sub.add_parser(
        "client",
        help="send one request to a running service and print the "
             "JSON response",
        description="Connect to a repro serve instance, send one "
                    "request, print the response JSON.  Exit 0 when the "
                    "response status is ok, 1 otherwise.")
    p_client.add_argument("kind",
                          help="request kind: assemble, run, sweep, "
                               "trace, fault, fuzz")
    p_client.add_argument("params", nargs="?", default=None,
                          help="request params as a JSON object, e.g. "
                               "'{\"workload\": \"fib\"}'")
    p_client.add_argument("--host", default="127.0.0.1")
    p_client.add_argument("--port", type=int, required=True)
    p_client.add_argument("--no-cache", action="store_true",
                          help="bypass the result cache (force a "
                               "recomputation)")
    p_client.set_defaults(func=cmd_client)

    p_sbench = sub.add_parser(
        "service-bench",
        help="zipf-mix load generator against an in-process service, "
             "written to BENCH_service.json",
        description="Run hundreds of synthetic clients drawing from a "
                    "zipf-skewed request catalog against an in-process "
                    "server, then recompute every catalog entry uncached "
                    "and compare canonical payloads byte-for-byte.  "
                    "Publishes p50/p99 split by cache outcome, hit rate, "
                    "shed rate, and breaker transitions.  Exit codes: "
                    "0 = clean, 1 = harness failure, 2 = a wrong answer "
                    "(response error or cached-vs-recomputed mismatch).")
    p_sbench.add_argument("--quick", action="store_true",
                          help="small client fleet (CI smoke)")
    p_sbench.add_argument("--clients", type=int, default=120)
    p_sbench.add_argument("--requests", type=int, default=10,
                          help="requests per client (default 10)")
    p_sbench.add_argument("--catalog", type=int, default=16,
                          help="distinct (kind, params) entries "
                               "(default 16)")
    p_sbench.add_argument("--zipf", type=float, default=1.1,
                          help="zipf skew s (default 1.1)")
    p_sbench.add_argument("--seed", type=int, default=1987)
    p_sbench.add_argument("--workers", type=int, default=2,
                          help="Runner worker processes (default 2)")
    p_sbench.add_argument("--output", default="BENCH_service.json",
                          metavar="PATH")
    p_sbench.set_defaults(func=cmd_service_bench)

    p_schaos = sub.add_parser(
        "service-chaos",
        help="six-disturbance service resilience campaign, written to "
             "SERVICE_campaign.json",
        description="Subject the service to worker SIGKILL, cache "
                    "corruption, burst overload, malformed frames, a "
                    "stalled client, and a mid-flight drain; every "
                    "response is checked against an in-process reference "
                    "computation.  Exit codes: 0 = every disturbance "
                    "absorbed with zero wrong responses, 1 = harness "
                    "failure, 2 = a disturbance was not absorbed.")
    p_schaos.add_argument("--quick", action="store_true",
                          help="smaller disturbances (CI smoke)")
    p_schaos.add_argument("--seed", type=int, default=0)
    p_schaos.add_argument("--output", default="SERVICE_campaign.json",
                          metavar="PATH")
    p_schaos.set_defaults(func=cmd_service_chaos)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
