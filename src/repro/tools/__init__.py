"""Developer tooling: pipeline visualization and the command line."""

from repro.tools.pipeview import PipelineTracer, trace_pipeline

__all__ = ["PipelineTracer", "trace_pipeline"]
