"""Pipeline visualization: classic instruction/cycle occupancy diagrams.

Renders the textbook pipeline diagram for a running machine::

    cycle            1    2    3    4    5    6    7    8
    0x100 li t0,0    F    R    A    M    W
    0x101 li t1,10        F    R    A    M    W
    0x102 add ...              F    R    A    M    W
    0x103 bgt ...                   F    R    A    M    W
    0x104 nop (slot)                     F    R    A    M    W
    ...

Stall cycles show as ``.`` (the qualified w1 clock withheld), squashed
instructions are marked ``x`` at writeback.  Invaluable when debugging
delay-slot behaviour or verifying what the reorganizer produced.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.core.pipeline import IF, RF, ALU, MEM, WB
from repro.core.processor import Machine

_STAGE_LETTERS = {IF: "F", RF: "R", ALU: "A", MEM: "M", WB: "W"}


@dataclasses.dataclass
class _Row:
    pc: int
    text: str
    first_cycle: int
    cells: Dict[int, str] = dataclasses.field(default_factory=dict)
    squashed: bool = False


class PipelineTracer:
    """Steps a machine cycle by cycle, recording stage occupancy."""

    def __init__(self, machine: Machine, max_rows: int = 64):
        self.machine = machine
        self.max_rows = max_rows
        self.rows: List[_Row] = []
        self._flights: Dict[int, _Row] = {}   # id(flight) -> row
        self.start_cycle = machine.stats.cycles

    def step(self, cycles: int = 1) -> None:
        """Advance and record ``cycles`` machine cycles."""
        pipeline = self.machine.pipeline
        for _ in range(cycles):
            if self.machine.halted:
                break
            stalled_before = pipeline._stall_left > 0
            self.machine.step()
            cycle = self.machine.stats.cycles
            # purge rows whose flight left the pipe: CPython reuses the
            # object ids of dead flights, which would merge unrelated rows
            live = {id(flight) for flight in pipeline.s
                    if flight is not None}
            self._flights = {key: row for key, row in self._flights.items()
                             if key in live}
            if stalled_before:
                # w1 withheld: every occupied stage idles in place
                for row in self._flights.values():
                    row.cells[cycle] = "."
                continue
            for stage, flight in enumerate(pipeline.s):
                if flight is None:
                    continue
                row = self._flights.get(id(flight))
                if row is None:
                    row = _Row(pc=flight.pc, text=str(flight.instr),
                               first_cycle=cycle)
                    self._flights[id(flight)] = row
                    self.rows.append(row)
                    if len(self.rows) > self.max_rows * 4:
                        self.rows = self.rows[-self.max_rows * 2:]
                letter = _STAGE_LETTERS[stage]
                if flight.squashed:
                    row.squashed = True
                    letter = letter.lower() if stage != WB else "x"
                row.cells[cycle] = letter

    def render(self, last_rows: Optional[int] = None,
               instruction_width: int = 28) -> str:
        """Render the recorded diagram as text."""
        rows = self.rows[-last_rows:] if last_rows else self.rows
        if not rows:
            return "(no instructions traced)"
        first = min(min(r.cells) for r in rows if r.cells)
        last = max(max(r.cells) for r in rows if r.cells)
        header = " " * (8 + instruction_width)
        header += "".join(f"{c:>4}" for c in range(first, last + 1))
        lines = [header]
        for row in rows:
            if not row.cells:
                continue
            label = f"{row.pc:#06x}  {row.text[:instruction_width]:<{instruction_width}}"
            cells = "".join(f"{row.cells.get(c, ''):>4}"
                            for c in range(first, last + 1))
            lines.append(label + cells)
        legend = ("legend: F/R/A/M/W = pipestages, lower-case/x = squashed, "
                  "'.' = stall (w1 withheld)")
        return "\n".join(lines + [legend])


def trace_pipeline(machine: Machine, cycles: int = 30,
                   last_rows: Optional[int] = None) -> str:
    """Convenience: trace ``cycles`` cycles of a loaded machine and render."""
    tracer = PipelineTracer(machine)
    tracer.step(cycles)
    return tracer.render(last_rows=last_rows)
