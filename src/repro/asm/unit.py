"""Symbolic assembly units and assembled program images.

An :class:`AsmUnit` is an ordered list of assembly items -- labels,
instructions (possibly with unresolved symbolic targets), and data
directives.  It is the common currency between the assembler front end, the
compiler's code generator, and the code reorganizer: the reorganizer moves
instructions around *before* addresses are assigned, so branch displacements
stay symbolic until :meth:`AsmUnit.assemble` resolves them.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.isa.encoding import encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format


@dataclasses.dataclass(eq=False)
class Op:
    """One instruction, optionally with a symbolic immediate.

    When ``target`` is set, the final immediate is the address of that
    symbol (plus the ``imm`` already in ``instr``, which acts as an addend);
    for branch-format instructions the displacement ``target - pc`` is used
    instead.

    ``eq=False``: two ops with identical instructions are still *distinct
    occurrences* -- the reorganizer moves ops between lists by identity,
    and value equality would let ``list.remove`` pick the wrong twin.
    """

    instr: Instruction
    target: Optional[str] = None
    source: str = ""

    def clone(self, **changes) -> "Op":
        instr = dataclasses.replace(self.instr, **changes)
        return Op(instr, target=self.target, source=self.source)


@dataclasses.dataclass
class Label:
    name: str


@dataclasses.dataclass
class Word:
    """``.word`` directive; values may be integers or symbol names."""

    values: List[Union[int, str]]


@dataclasses.dataclass
class Space:
    """``.space`` directive: reserve ``count`` zeroed words."""

    count: int


@dataclasses.dataclass
class Org:
    """``.org`` directive: continue assembly at an absolute word address."""

    address: int


Item = Union[Op, Label, Word, Space, Org]


class AssemblyError(ValueError):
    """Raised for duplicate labels, unresolved symbols, or range errors."""


@dataclasses.dataclass
class Program:
    """A fully resolved program image.

    ``image`` maps word addresses to 32-bit memory words (sparse).
    ``listing`` pairs each instruction address with its decoded form, which
    the trace and analysis machinery uses to avoid re-decoding.
    """

    image: Dict[int, int]
    symbols: Dict[str, int]
    entry: int
    listing: Dict[int, Instruction]

    def words(self) -> Iterable[Tuple[int, int]]:
        return self.image.items()

    @property
    def size(self) -> int:
        """Number of occupied memory words (static code + data size)."""
        return len(self.image)

    @property
    def code_size(self) -> int:
        """Number of instruction words (the paper's static code size)."""
        return len(self.listing)

    def symbol(self, name: str) -> int:
        if name not in self.symbols:
            raise KeyError(f"undefined symbol {name!r}")
        return self.symbols[name]


class AsmUnit:
    """An ordered, still-symbolic assembly translation unit."""

    def __init__(self, items: Optional[List[Item]] = None):
        self.items: List[Item] = list(items) if items else []

    # ------------------------------------------------------------- building
    def emit(self, instr: Instruction, target: Optional[str] = None,
             source: str = "") -> Op:
        op = Op(instr, target=target, source=source)
        self.items.append(op)
        return op

    def label(self, name: str) -> None:
        self.items.append(Label(name))

    def word(self, *values: Union[int, str]) -> None:
        self.items.append(Word(list(values)))

    def space(self, count: int) -> None:
        self.items.append(Space(count))

    def org(self, address: int) -> None:
        self.items.append(Org(address))

    def extend(self, other: "AsmUnit") -> None:
        self.items.extend(other.items)

    # -------------------------------------------------------------- queries
    def ops(self) -> List[Op]:
        return [item for item in self.items if isinstance(item, Op)]

    def __len__(self) -> int:
        return len(self.items)

    # ------------------------------------------------------------ assembly
    def layout(self, base: int = 0) -> Tuple[Dict[str, int], Dict[int, Item]]:
        """Assign addresses: returns (symbol table, address -> item map)."""
        symbols: Dict[str, int] = {}
        placed: Dict[int, Item] = {}
        address = base
        for item in self.items:
            if isinstance(item, Label):
                if item.name in symbols:
                    raise AssemblyError(f"duplicate label {item.name!r}")
                symbols[item.name] = address
            elif isinstance(item, Org):
                address = item.address
            elif isinstance(item, Op):
                placed[address] = item
                address += 1
            elif isinstance(item, Word):
                for offset, value in enumerate(item.values):
                    placed[address + offset] = Word([value])
                address += len(item.values)
            elif isinstance(item, Space):
                for offset in range(item.count):
                    placed[address + offset] = Word([0])
                address += item.count
            else:  # pragma: no cover - defensive
                raise AssemblyError(f"unknown assembly item {item!r}")
        return symbols, placed

    def assemble(self, base: int = 0, entry: Optional[str] = None) -> Program:
        """Resolve symbols and produce a :class:`Program`.

        ``entry`` names the start symbol; it defaults to ``_start`` when
        that label exists and otherwise to the lowest instruction address.
        """
        symbols, placed = self.layout(base)
        image: Dict[int, int] = {}
        listing: Dict[int, Instruction] = {}
        for address, item in placed.items():
            if isinstance(item, Word):
                value = item.values[0]
                if isinstance(value, str):
                    if value not in symbols:
                        raise AssemblyError(f"undefined symbol {value!r} in .word")
                    value = symbols[value]
                image[address] = value & 0xFFFFFFFF
                continue
            instr = item.instr
            if item.target is not None:
                if item.target not in symbols:
                    raise AssemblyError(
                        f"undefined symbol {item.target!r} "
                        f"(near {item.source or instr})"
                    )
                resolved = symbols[item.target] + instr.imm
                if instr.format is Format.BRANCH:
                    resolved = symbols[item.target] - address
                instr = dataclasses.replace(instr, imm=resolved)
            try:
                image[address] = encode(instr)
            except ValueError as exc:
                raise AssemblyError(f"{exc} (near {item.source or instr})") from exc
            listing[address] = instr
        if entry is None:
            entry = "_start" if "_start" in symbols else None
        if entry is not None:
            if entry not in symbols:
                raise AssemblyError(f"entry symbol {entry!r} not defined")
            entry_address = symbols[entry]
        else:
            entry_address = min(listing) if listing else base
        return Program(image=image, symbols=symbols, entry=entry_address,
                       listing=listing)
