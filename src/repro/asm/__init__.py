"""Assembler / disassembler for the MIPS-X reproduction ISA."""

from repro.asm.assembler import Assembler, AsmSyntaxError, assemble, parse
from repro.asm.disassembler import disassemble, disassemble_word, listing
from repro.asm.unit import AsmUnit, AssemblyError, Label, Op, Org, Program, Space, Word

__all__ = [
    "AsmSyntaxError",
    "AsmUnit",
    "Assembler",
    "AssemblyError",
    "Label",
    "Op",
    "Org",
    "Program",
    "Space",
    "Word",
    "assemble",
    "disassemble",
    "disassemble_word",
    "listing",
    "parse",
]
