"""Two-pass textual assembler for the MIPS-X reproduction ISA.

Syntax example::

    ; comments start with ';' or '#'
    _start:
        li    sp, 0x4000
        la    t0, table
        ld    t1, 0(t0)
        ld    t2, 1(t0)
        nop                  ; load delay slot (software interlock!)
        add   t3, t1, t2
        beqsq t3, r0, done   ; squashing branch, two delay slots follow
        nop
        nop
        st    t3, result
    done:
        halt

    table:  .word 1, 2
    result: .space 1

The assembler is deliberately *not* clever: it performs no scheduling and no
delay-slot filling -- that is the reorganizer's job (:mod:`repro.reorg`), as
on the real machine.  The only conveniences are pseudo-instructions
(``nop``, ``mov``, ``li``, ``la``, ``br``, ``jmp``, ``call``, ``ret``) which
expand to fixed short sequences before layout.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple, Union

from repro.asm.unit import AsmUnit, AssemblyError, Program
from repro.isa import instruction as I
from repro.isa.opcodes import Opcode, SpecialReg
from repro.isa.registers import REGISTER_ALIASES

_BRANCH_MNEMONICS = {
    "beq": Opcode.BEQ,
    "bne": Opcode.BNE,
    "blt": Opcode.BLT,
    "ble": Opcode.BLE,
    "bgt": Opcode.BGT,
    "bge": Opcode.BGE,
}

_COMPUTE3 = {
    "add": I.add,
    "sub": I.sub,
    "and": I.and_,
    "or": I.or_,
    "xor": I.xor,
    "mstep": I.mstep,
    "dstep": I.dstep,
}

_SHIFTS = {"sll": I.sll, "srl": I.srl, "sra": I.sra, "rotl": I.rotl}

_MEMORY = {"ld": I.ld, "st": I.st, "ldf": I.ldf, "stf": I.stf}

_MEM_OPERAND = re.compile(r"^(?P<imm>[^()]*)\((?P<reg>[^()]+)\)$")
_LABEL_DEF = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_SYMBOL = re.compile(r"^[A-Za-z_.$][\w.$]*$")


class AsmSyntaxError(AssemblyError):
    """Source-level syntax error with line information."""

    def __init__(self, message: str, line_number: int, line: str):
        super().__init__(f"line {line_number}: {message}: {line.strip()!r}")
        self.line_number = line_number


def _parse_int(text: str) -> int:
    return int(text.strip(), 0)


def _is_int(text: str) -> bool:
    try:
        _parse_int(text)
        return True
    except ValueError:
        return False


def _reg(text: str) -> int:
    key = text.strip().lower()
    if key not in REGISTER_ALIASES:
        raise ValueError(f"unknown register {text.strip()!r}")
    return REGISTER_ALIASES[key]


def _freg(text: str) -> int:
    """FPU register: 'f0'..'f31' (also accepts a bare number)."""
    key = text.strip().lower()
    if key.startswith("f") and key[1:].isdigit():
        number = int(key[1:])
    elif key.isdigit():
        number = int(key)
    else:
        raise ValueError(f"unknown FPU register {text.strip()!r}")
    if not 0 <= number < 32:
        raise ValueError(f"FPU register out of range: {text.strip()!r}")
    return number


def _split_operands(text: str) -> List[str]:
    parts = [part.strip() for part in text.split(",")]
    return [part for part in parts if part]


def _parse_address(text: str) -> Tuple[Union[int, str], int, int]:
    """Parse ``imm(reg)`` / ``symbol(reg)`` / ``imm`` / ``symbol``.

    Returns ``(imm_or_symbol, addend, base_register)``.
    """
    text = text.strip()
    match = _MEM_OPERAND.match(text)
    base = 0
    if match:
        base = _reg(match.group("reg"))
        text = match.group("imm").strip()
    if not text:
        return 0, 0, base
    if _is_int(text):
        return _parse_int(text), 0, base
    addend = 0
    if "+" in text:
        symbol, _, rest = text.partition("+")
        symbol, addend = symbol.strip(), _parse_int(rest)
    elif text.count("-") == 1 and not text.startswith("-"):
        symbol, _, rest = text.partition("-")
        symbol, addend = symbol.strip(), -_parse_int(rest)
    else:
        symbol = text
    if not _SYMBOL.match(symbol):
        raise ValueError(f"bad address operand {text!r}")
    return symbol, addend, base


def expand_li(rd: int, value: int) -> List[I.Instruction]:
    """Expand ``li rd, value`` for any 32-bit value.

    Small constants are a single ``addi rd, r0, value`` -- the paper's
    "loading immediate values by doing an add immediate to Register 0".
    Larger ones take the classic three-instruction RISC sequence
    (load high part, shift, add low part).
    """
    value &= 0xFFFFFFFF
    signed = value - (1 << 32) if value & 0x80000000 else value
    if -(1 << 16) <= signed < (1 << 16):
        return [I.addi(rd, 0, signed)]
    low = signed & 0xFFFF
    if low >= 0x8000:
        low -= 0x10000
    high = (signed - low) >> 16
    return [I.addi(rd, 0, high), I.sll(rd, rd, 16), I.addi(rd, rd, low)]


class Assembler:
    """Parse assembly text into an :class:`AsmUnit` or a :class:`Program`."""

    def parse(self, text: str) -> AsmUnit:
        unit = AsmUnit()
        for line_number, raw in enumerate(text.splitlines(), start=1):
            line = raw.split(";")[0].split("#")[0].strip()
            while True:
                match = _LABEL_DEF.match(line)
                if not match:
                    break
                unit.label(match.group(1))
                line = line[match.end():].strip()
            if not line:
                continue
            try:
                self._parse_statement(unit, line)
            except (ValueError, KeyError) as exc:
                raise AsmSyntaxError(str(exc), line_number, raw) from exc
        return unit

    def assemble(self, text: str, base: int = 0,
                 entry: Optional[str] = None) -> Program:
        return self.parse(text).assemble(base=base, entry=entry)

    # ----------------------------------------------------------- statements
    def _parse_statement(self, unit: AsmUnit, line: str) -> None:
        mnemonic, _, rest = line.partition(" ")
        mnemonic = mnemonic.lower()
        rest = rest.strip()
        if mnemonic.startswith("."):
            self._parse_directive(unit, mnemonic, rest)
            return
        operands = _split_operands(rest)
        self._parse_instruction(unit, mnemonic, operands, line)

    def _parse_directive(self, unit: AsmUnit, name: str, rest: str) -> None:
        if name == ".org":
            unit.org(_parse_int(rest))
        elif name == ".word":
            values: List[Union[int, str]] = []
            for part in _split_operands(rest):
                values.append(_parse_int(part) if _is_int(part) else part)
            unit.word(*values)
        elif name == ".space":
            unit.space(_parse_int(rest))
        elif name == ".global":
            pass  # accepted for familiarity; all symbols are global
        else:
            raise ValueError(f"unknown directive {name!r}")

    def _parse_instruction(self, unit: AsmUnit, mnemonic: str,
                           ops: List[str], line: str) -> None:
        squash = False
        if mnemonic.endswith("sq") and mnemonic[:-2] in _BRANCH_MNEMONICS:
            squash = True
            mnemonic = mnemonic[:-2]

        if mnemonic in _BRANCH_MNEMONICS:
            self._emit_branch(unit, _BRANCH_MNEMONICS[mnemonic], ops, squash, line)
        elif mnemonic in _COMPUTE3:
            rd, rs1, rs2 = (_reg(op) for op in ops)
            unit.emit(_COMPUTE3[mnemonic](rd, rs1, rs2), source=line)
        elif mnemonic in _SHIFTS:
            unit.emit(_SHIFTS[mnemonic](_reg(ops[0]), _reg(ops[1]),
                                        _parse_int(ops[2])), source=line)
        elif mnemonic == "not":
            unit.emit(I.not_(_reg(ops[0]), _reg(ops[1])), source=line)
        elif mnemonic == "mov":
            unit.emit(I.mov(_reg(ops[0]), _reg(ops[1])), source=line)
        elif mnemonic == "li":
            for instr in expand_li(_reg(ops[0]), _parse_int(ops[1])):
                unit.emit(instr, source=line)
        elif mnemonic == "la":
            symbol, addend, base = _parse_address(ops[1])
            if isinstance(symbol, int):
                raise ValueError("la expects a symbol operand")
            unit.emit(I.addi(_reg(ops[0]), base, addend), target=symbol,
                      source=line)
        elif mnemonic == "addi":
            unit.emit(I.addi(_reg(ops[0]), _reg(ops[1]), _parse_int(ops[2])),
                      source=line)
        elif mnemonic in _MEMORY:
            self._emit_memory(unit, mnemonic, ops, line)
        elif mnemonic == "jspci":
            imm, addend, base = _parse_address(ops[1])
            if isinstance(imm, str):
                unit.emit(I.jspci(_reg(ops[0]), base, addend), target=imm,
                          source=line)
            else:
                unit.emit(I.jspci(_reg(ops[0]), base, imm), source=line)
        elif mnemonic in ("br", "jmp"):
            self._emit_branch(unit, Opcode.BEQ, ["r0", "r0", ops[0]], False, line)
        elif mnemonic == "call":
            imm, addend, base = _parse_address(ops[0])
            if isinstance(imm, str):
                unit.emit(I.jspci(2, base, addend), target=imm, source=line)
            else:
                unit.emit(I.jspci(2, base, imm), source=line)
        elif mnemonic == "ret":
            unit.emit(I.jspci(0, 2, 0), source=line)
        elif mnemonic == "cop":
            payload, addend, base = _parse_address(ops[0])
            if isinstance(payload, str):
                raise ValueError("cop payload must be numeric")
            unit.emit(I.cop(base, payload + addend), source=line)
        elif mnemonic in ("movtoc", "movfrc"):
            payload, addend, base = _parse_address(ops[1])
            if isinstance(payload, str):
                raise ValueError(f"{mnemonic} payload must be numeric")
            ctor = I.movtoc if mnemonic == "movtoc" else I.movfrc
            unit.emit(ctor(_reg(ops[0]), base, payload + addend), source=line)
        elif mnemonic == "movfrs":
            unit.emit(I.movfrs(_reg(ops[0]), SpecialReg[ops[1].upper()]),
                      source=line)
        elif mnemonic == "movtos":
            unit.emit(I.movtos(SpecialReg[ops[0].upper()], _reg(ops[1])),
                      source=line)
        elif mnemonic == "nop":
            unit.emit(I.nop(), source=line)
        elif mnemonic == "trap":
            unit.emit(I.trap(), source=line)
        elif mnemonic == "jpc":
            unit.emit(I.jpc(), source=line)
        elif mnemonic == "jpcrs":
            unit.emit(I.jpcrs(), source=line)
        elif mnemonic == "halt":
            unit.emit(I.halt(), source=line)
        else:
            raise ValueError(f"unknown mnemonic {mnemonic!r}")

    def _emit_branch(self, unit: AsmUnit, opcode: Opcode, ops: List[str],
                     squash: bool, line: str) -> None:
        rs1, rs2 = _reg(ops[0]), _reg(ops[1])
        target = ops[2].strip()
        if _is_int(target):
            unit.emit(I.branch(opcode, rs1, rs2, _parse_int(target), squash),
                      source=line)
        else:
            unit.emit(I.branch(opcode, rs1, rs2, 0, squash), target=target,
                      source=line)

    def _emit_memory(self, unit: AsmUnit, mnemonic: str, ops: List[str],
                     line: str) -> None:
        ctor = _MEMORY[mnemonic]
        reg = _freg(ops[0]) if mnemonic in ("ldf", "stf") else _reg(ops[0])
        imm, addend, base = _parse_address(ops[1])
        if isinstance(imm, str):
            unit.emit(ctor(reg, base, addend), target=imm, source=line)
        else:
            unit.emit(ctor(reg, base, imm + addend), source=line)


def assemble(text: str, base: int = 0, entry: Optional[str] = None) -> Program:
    """Assemble source text into a :class:`Program` (module-level shortcut)."""
    return Assembler().assemble(text, base=base, entry=entry)


def parse(text: str) -> AsmUnit:
    """Parse source text into a symbolic :class:`AsmUnit`."""
    return Assembler().parse(text)
