"""Disassembler: 32-bit words back to readable assembly text."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.asm.unit import Program
from repro.isa.encoding import DecodeError, decode
from repro.isa.instruction import Instruction


def disassemble_word(word: int) -> str:
    """Disassemble one instruction word; data words render as ``.word``."""
    try:
        return str(decode(word))
    except DecodeError:
        return f".word {word:#010x}"


def disassemble(words: Iterable[int], base: int = 0) -> List[Tuple[int, str]]:
    """Disassemble a sequence of words starting at word address ``base``."""
    return [(base + idx, disassemble_word(word))
            for idx, word in enumerate(words)]


def listing(program: Program,
            limit: Optional[int] = None) -> str:
    """Render a program listing with addresses, symbols, and text.

    Useful in examples and when debugging reorganizer output.
    """
    by_address: Dict[int, List[str]] = {}
    for name, address in program.symbols.items():
        by_address.setdefault(address, []).append(name)
    lines = []
    for address in sorted(program.image):
        for name in by_address.get(address, []):
            lines.append(f"{name}:")
        instr: Optional[Instruction] = program.listing.get(address)
        text = str(instr) if instr is not None else (
            f".word {program.image[address]:#010x}")
        lines.append(f"  {address:#06x}: {text}")
        if limit is not None and len(lines) >= limit:
            lines.append("  ...")
            break
    return "\n".join(lines)
