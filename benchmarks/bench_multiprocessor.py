"""E17 (extension) -- MIPS-X nodes as a shared-memory multiprocessor.

The project's stated end goal: "use 6-10 of these processors as the nodes
in a shared memory multiprocessor.  The resulting machine would be about
two orders of magnitude more powerful than a VAX 11/780."

This harness scales a parallel reduction across 1..8 nodes with the
write-through-invalidate protocol and the shared-bus contention model,
then checks the paper's two-orders-of-magnitude arithmetic using the
measured single-node VAX speedup.
"""

import math

from repro.asm import assemble
from repro.core import MachineConfig
from repro.multi import MultiMachine

N = 512
VALUES = [(7 * i + 3) % 101 for i in range(N)]

TEMPLATE = """
_start:
    li   s0, 0
    mov  t9, gp
    sll  t9, t9, {chunk_shift}   ; start = gp * chunk (blocked distribution)
    mov  t0, t9
    addi s2, t9, {chunk}
sumloop:
    la   t1, data
    add  t1, t1, t0
    ld   t2, 0(t1)
    nop
    add  s0, s0, t2
    addi t0, t0, 1
    blt  t0, s2, sumloop
    nop
    nop
    la   t3, partial
    add  t3, t3, gp
    st   s0, 0(t3)
    la   t4, done
    add  t4, t4, gp
    li   t5, 1
    st   t5, 0(t4)
    bne  gp, r0, finish
    nop
    nop
    li   t6, 0
waitloop:
    la   t7, done
    add  t7, t7, t6
    ld   t8, 0(t7)
    nop
    beq  t8, r0, waitloop
    nop
    nop
    addi t6, t6, 1
    li   t9, {ncpu}
    blt  t6, t9, waitloop
    nop
    nop
    li   s1, 0
    li   t6, 0
combine:
    la   t7, partial
    add  t7, t7, t6
    ld   t8, 0(t7)
    nop
    add  s1, s1, t8
    addi t6, t6, 1
    blt  t6, t9, combine
    nop
    nop
    li   a0, 0x3FFFF0
    st   s1, 0(a0)
finish:
    halt
partial: .space {ncpu}
done:    .space {ncpu}
data:    .word {data}
"""


def _run(ncpu):
    chunk = N // ncpu
    source = TEMPLATE.format(
        ncpu=ncpu, chunk=chunk, chunk_shift=int(math.log2(chunk)),
        data=", ".join(map(str, VALUES)))
    system = MultiMachine(ncpu, MachineConfig())
    system.load_program(assemble(source))
    system.run(20_000_000)
    assert system.all_halted
    assert system.console.values == [sum(VALUES)]
    return system


def _scaling():
    return {ncpu: _run(ncpu) for ncpu in (1, 2, 4, 8)}


def test_multiprocessor_scaling(benchmark, report):
    report.name = "multiprocessor"
    systems = benchmark.pedantic(_scaling, rounds=1, iterations=1)
    baseline = systems[1].cycles
    rows = []
    for ncpu, system in systems.items():
        rows.append((ncpu, system.cycles,
                     round(baseline / system.cycles, 2),
                     system.bus.contention_cycles,
                     system.bus.invalidations))
    report.table(["nodes", "cycles", "speedup", "bus wait cycles",
                  "invalidations"], rows,
                 "E17 (extension): parallel reduction on shared-memory "
                 "MIPS-X nodes")

    single_vs_vax = 14.9  # measured by bench_vax.py
    speedup8 = baseline / systems[8].cycles
    report.table(
        ["metric", "value"],
        [
            ("single node vs VAX 11/780", f"{single_vs_vax:.1f}x"),
            ("8-node parallel speedup", f"{speedup8:.2f}x"),
            ("combined vs VAX", f"{single_vs_vax * speedup8:.0f}x"),
            ("paper's target",
             "two orders of magnitude over a VAX 11/780"),
        ],
        "The paper's end-goal arithmetic",
    )

    # correctness on every node count is asserted inside _run; shape:
    assert systems[2].cycles < systems[1].cycles
    assert systems[4].cycles < systems[2].cycles
    assert speedup8 > 2.0
    # the coherence machinery was genuinely exercised
    assert systems[8].bus.invalidations >= 16
    assert systems[8].bus.contention_cycles > 0
