"""E2/E3 -- Figures 3 and 4: the squash and cache-miss state machines.

The figures are state diagrams; this harness regenerates their transition
tables and then *exercises* both machines in a live run, confirming that
they are the only two FSMs sequencing the machine's stalls and squashes
(the paper: two FSMs, in the PC unit, implemented as shift registers,
under 0.2% of chip area -- see bench_area_bandwidth for the area claim).
"""

from repro.asm import assemble
from repro.core import (
    CacheMissFsm,
    Machine,
    MachineConfig,
    SquashFsm,
)


def _exercise_fsms():
    """Run a program that takes squashed branches, an exception, and
    Icache misses; return both FSMs plus run statistics."""
    source = """
    .org 0
        movfrs s0, psw
        halt
    .org 0x40
    _start:
        li t0, 4
    loop:
        addi t0, t0, -1
        bgtsq t0, r0, loop      ; squashing branch: wrong-way on exit
        nop
        nop
        trap                    ; exception -> vector 0
    """
    machine = Machine(MachineConfig())
    machine.load_program(assemble(source))
    machine.run(100_000)
    assert machine.halted
    return machine


def test_fsm_figures(benchmark, report):
    report.name = "fsm_figures"
    machine = benchmark.pedantic(_exercise_fsms, rounds=1, iterations=1)

    report.table(["state", "input", "next state", "outputs"],
                 SquashFsm.transition_table(),
                 "Figure 3: squash finite state machine")
    report.table(["state", "input", "next state"],
                 CacheMissFsm.transition_table(),
                 "Figure 4: cache-miss finite state machine")

    squash_fsm = machine.pipeline.squash_fsm
    miss_fsm = machine.pipeline.miss_fsm
    report.table(
        ["measurement", "value"],
        [
            ("squash FSM transitions", squash_fsm.transitions),
            ("branch squashes", machine.stats.branch_squashes),
            ("exceptions", machine.stats.exceptions),
            ("icache miss sequences", miss_fsm.miss_sequences),
            ("icache stall cycles", miss_fsm.stall_cycles),
        ],
        "Live exercise of both FSMs",
    )

    # the squash FSM served BOTH a wrong-way squashing branch and an
    # exception -- the paper's shared-hardware argument
    assert machine.stats.branch_squashes >= 1
    assert machine.stats.exceptions == 1
    assert squash_fsm.transitions >= 3
    # every icache stall cycle was sequenced by the miss FSM
    assert miss_fsm.stall_cycles == machine.stats.icache_stall_cycles
    assert miss_fsm.miss_sequences == machine.icache.stats.misses
    # state coverage of the transition tables
    states_fig3 = {row[0] for row in SquashFsm.transition_table()}
    assert states_fig3 == {"NORMAL", "BRANCH_SQUASH", "EXCEPTION"}
    states_fig4 = {row[0] for row in CacheMissFsm.transition_table()}
    assert {"IDLE", "FETCH_MISS", "FETCH_NEXT", "WAIT_EXTERNAL"} == states_fig4
