"""E12 -- the coprocessor interface schemes on FP-intensive code.

The paper's narrative: the non-cached scheme looked fine on integer
benchmarks, but FP-intensive traces showed "a significant percentage of
the instructions were floating point instructions", making the per-
instruction Icache-miss overhead unacceptable; the final address-line
interface keeps coprocessor instructions cacheable for one extra pin and
gives the FPU direct memory access via ldf/stf.
"""

from repro.analysis.common import run_measured
from repro.coproc.schemes import (
    comparison_rows,
    evaluate_schemes,
    mix_from_machine,
    schemes,
)
from repro.workloads import FP_SUITE


def _measure_mixes():
    mixes = []
    for name in FP_SUITE:
        machine = run_measured(name)
        mixes.append(mix_from_machine(name, machine))
    return mixes


def test_coprocessor_interface_schemes(benchmark, report):
    report.name = "coproc_schemes"
    mixes = benchmark.pedantic(_measure_mixes, rounds=1, iterations=1)

    mix_rows = [(m.name, m.instructions, m.coproc_ops, m.fp_memory_ops,
                 round(m.fp_fraction, 2)) for m in mixes]
    report.table(["workload", "instructions", "coproc ops", "fp mem ops",
                  "fp fraction"], mix_rows,
                 "Measured FP instruction mixes")

    report.table(["interface scheme", "extra pins", "relative perf",
                  "cacheable"], comparison_rows(mixes),
                 "E12: interface schemes (performance relative to the "
                 "final address-line interface)")

    detail = []
    for mix in mixes:
        for outcome in evaluate_schemes(mix):
            detail.append((mix.name, outcome.scheme.name,
                           int(outcome.cycles),
                           round(outcome.relative_performance, 3)))
    report.table(["workload", "scheme", "cycles", "relative perf"], detail,
                 "Per-workload detail")

    # FP-intensive: a significant fraction of instructions talk to the FPU
    for mix in mixes:
        assert mix.fp_fraction > 0.25, mix.name

    by_name = {}
    for mix in mixes:
        for outcome in evaluate_schemes(mix):
            by_name.setdefault(outcome.scheme.name, []).append(
                outcome.relative_performance)

    def average(name):
        values = by_name[name]
        return sum(values) / len(values)

    final = average("address-line interface (final)")
    non_cached = average("non-cached coprocessor instructions")
    bus = average("coprocessor bit + dedicated bus")
    # the final scheme is the reference
    assert abs(final - 1.0) < 1e-9
    # the non-cached scheme loses significantly on FP-heavy code
    assert non_cached < 0.75
    # the dedicated bus only loses the ldf/stf fast path (small), but
    # costs ~20 pins
    assert 0.8 < bus <= 1.0
    pins = {s.name: s.extra_pins for s in schemes()}
    assert pins["address-line interface (final)"] == 1
    assert pins["coprocessor bit + dedicated bus"] == 20
