"""E4/E5 -- the instruction cache studies.

Paper results reproduced here:

* initial simulations (single-word fetch-back) showed miss rates "over
  20%"; fetching back two words "almost halves the miss ratio";
* with the double fetch-back the large-benchmark miss rate averages 12%,
  an average instruction fetch cost of 1.24 cycles;
* the cache is more sensitive to miss *service time* than miss *ratio*:
  tags-in-datapath (2-cycle miss) beats any organization at 3 cycles.
"""

import pytest

from repro.core import IcacheConfig
from repro.icache.explorer import (
    evaluate,
    fetchback_study,
    service_time_study,
    sweep_organizations,
)
from repro.traces.synthetic import paper_regime_program


def _trace():
    return list(paper_regime_program().instruction_trace(400_000))


@pytest.fixture(scope="module")
def trace():
    return _trace()


def test_fetchback_halves_miss_ratio(benchmark, report, trace):
    report.name = "icache_fetchback"
    results = benchmark.pedantic(fetchback_study, args=(trace,),
                                 rounds=1, iterations=1)
    rows = [(r.label, round(r.miss_ratio, 3), r.config.miss_cycles,
             round(r.fetch_cost, 3)) for r in results]
    report.table(["fetch-back", "miss ratio", "service cycles",
                  "avg fetch cost"], rows,
                 "E4: fetch-back count vs miss ratio (paper: 2 words "
                 "almost halves the single-word ratio)")

    by_count = {r.config.fetchback: r for r in results}
    single, double = by_count[1], by_count[2]
    # paper: initial (single-word) simulations over 20% missing
    assert single.miss_ratio > 0.20
    # double fetch-back "almost halves the miss ratio"
    assert 0.40 < double.miss_ratio / single.miss_ratio < 0.62
    # the paper's operating point: ~12% miss, ~1.24 cycles per fetch
    assert 0.09 < double.miss_ratio < 0.16
    assert 1.18 < double.fetch_cost < 1.33
    # beyond 2 words the extra service cycles eat the ratio gains
    assert by_count[3].fetch_cost >= double.fetch_cost - 0.01
    assert by_count[4].fetch_cost >= double.fetch_cost - 0.01


def test_service_time_dominates_miss_ratio(benchmark, report, trace):
    report.name = "icache_service_time"
    results = benchmark.pedantic(service_time_study, args=(trace,),
                                 rounds=1, iterations=1)
    rows = [(r.label, round(r.miss_ratio, 3), r.config.miss_cycles,
             round(r.fetch_cost, 3)) for r in results]
    report.table(["organization", "miss ratio", "service cycles",
                  "avg fetch cost"], rows,
                 "E5: miss service time vs miss ratio (paper: 2-cycle "
                 "service beats better-ratio organizations at 3)")

    paper_2cycle, paper_3cycle, best_ratio_3cycle = results[:3]
    # the same organization is strictly worse at 3-cycle service
    assert paper_3cycle.fetch_cost > paper_2cycle.fetch_cost
    # even the best miss ratio achievable cannot buy back the extra
    # service cycle: implementation beats organization
    assert best_ratio_3cycle.miss_ratio <= paper_2cycle.miss_ratio
    assert best_ratio_3cycle.fetch_cost > paper_2cycle.fetch_cost


def test_organization_sweep_under_fixed_area(benchmark, report, trace):
    report.name = "icache_organizations"
    results = benchmark.pedantic(
        sweep_organizations, args=(trace,), rounds=1, iterations=1)
    results = sorted(results, key=lambda r: r.fetch_cost)[:12]
    rows = [(r.describe(), round(r.miss_ratio, 3), round(r.fetch_cost, 3))
            for r in results]
    report.table(["organization (512 words)", "miss ratio", "fetch cost"],
                 rows, "Best organizations of the fixed 512-word budget")

    paper = evaluate(IcacheConfig(), trace)
    best = results[0]
    # the paper's organization is within a whisker of the best point of
    # the whole design space (the paper: organization mattered less than
    # implementation)
    assert paper.fetch_cost < best.fetch_cost * 1.10


def _quantum_experiment():
    from repro.analysis.multiprogramming import (
        collect_workload_traces,
        quantum_sweep,
        warm_miss_ratio,
    )
    from repro.workloads import LISP_SUITE, PASCAL_SUITE

    names = list(PASCAL_SUITE) + list(LISP_SUITE)
    traces = collect_workload_traces(names)
    points = quantum_sweep(traces,
                           quanta=(250, 1000, 4000, 16000, 64000))
    return points, warm_miss_ratio(traces)


def test_multiprogramming_quantum_sweep(benchmark, report):
    """Task-switch interval vs miss ratio -- the Smith ([15]) methodology
    the paper used for its memory-system numbers: cold-start reloads
    dominate at small Q and amortize toward the warm floor at large Q."""
    report.name = "icache_multiprogramming"
    points, warm = benchmark.pedantic(_quantum_experiment, rounds=1,
                                      iterations=1)
    rows = [(p.quantum, round(p.miss_ratio, 4)) for p in points]
    rows.append(("no switching (warm)", round(warm, 4)))
    report.table(["switch quantum Q", "miss ratio"], rows,
                 "Multiprogramming: task-switch interval vs Icache miss "
                 "ratio (cold-start vs warm-start)")
    ratios = [p.miss_ratio for p in points]
    # reload cost amortizes monotonically with the quantum...
    assert all(a >= b for a, b in zip(ratios, ratios[1:]))
    # ...approaching the warm floor, from far above it
    assert ratios[0] > 5 * warm
    assert ratios[-1] < 2.5 * warm
