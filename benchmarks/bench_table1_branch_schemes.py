"""E1 -- Table 1: average cycles per branch for the six branch schemes.

Paper values: 2-slot no-squash 2.0, always 1.5, optional 1.3;
1-slot no-squash 1.4, always 1.3, optional 1.1.

The reproduced *shape*: squashing beats no-squash, optional squashing is
the best at each slot count, and one slot beats two at every squash mode.
"""

from repro.analysis.branch_schemes import PAPER_TABLE1, table1


def test_table1_branch_schemes(benchmark, report):
    report.name = "table1_branch_schemes"
    evaluations = benchmark.pedantic(table1, rounds=1, iterations=1)

    measured = {e.scheme.name: e.cycles_per_branch for e in evaluations}
    rows = [(name, round(measured[name], 2), PAPER_TABLE1[name])
            for name in measured]
    report.table(["branch scheme", "cycles/branch (measured)", "paper"],
                 rows, "Table 1: average cycles per branch instruction")

    per_workload = []
    for evaluation in evaluations:
        for cost in evaluation.per_workload:
            per_workload.append((evaluation.scheme.name, cost.name,
                                 cost.executions,
                                 round(cost.cycles_per_branch, 2)))
    report.table(["scheme", "workload", "branch execs", "cycles/branch"],
                 per_workload, "Per-workload detail")

    # --- shape assertions (the paper's orderings) -----------------------
    m = measured
    assert m["2-slot squash optional"] <= m["2-slot always squash"]
    assert m["2-slot always squash"] < m["2-slot no squash"]
    assert m["1-slot squash optional"] <= m["1-slot always squash"]
    assert m["1-slot always squash"] < m["1-slot no squash"]
    # one slot beats two at every squash mode
    assert m["1-slot no squash"] < m["2-slot no squash"]
    assert m["1-slot squash optional"] < m["2-slot squash optional"]
    # magnitudes in the right region (1 <= cost <= 1 + slots)
    for name, value in m.items():
        slots = 2 if name.startswith("2") else 1
        assert 1.0 <= value <= 1.0 + slots
    # squashing rows land within ~0.4 cycles of the paper; the no-squash
    # rows depend entirely on move-from-above scheduling, where the
    # Stanford compiler's decade head start shows -- allow a wider band
    for name, value in m.items():
        tolerance = 0.85 if "no squash" in name else 0.45
        assert abs(value - PAPER_TABLE1[name]) < tolerance, (name, value)
