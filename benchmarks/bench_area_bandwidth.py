"""E10/E11 -- the physical budget (Figure 2) and memory bandwidth.

Paper facts reproduced by the transistor model:

* about 150K transistors, "two thirds of which are in the instruction
  cache";
* the two control FSMs occupy "less than 0.2% of the total area";
* memory bandwidth at 20 MHz: 26 MWords/s average (data roughly every
  third cycle), 40 MWords/s peak -- the pressure that motivated the
  on-chip cache;
* the die-size constraint: the next cache size up would not have fit the
  150K-transistor budget.
"""

from repro.analysis.area import (
    PAPER_TOTAL_TRANSISTORS,
    fsm_area_fraction,
    icache_fraction,
    icache_size_tradeoff,
    transistor_budget,
)
from repro.analysis.cpi import suite
from repro.core import perfect_memory_config
from repro.traces.synthetic import paper_regime_program
from repro.workloads import PASCAL_SUITE


def test_transistor_budget(benchmark, report):
    report.name = "area_budget"
    budget = benchmark.pedantic(transistor_budget, rounds=1, iterations=1)
    report.table(["component", "transistors", "fraction"], budget.rows(),
                 "E10: transistor budget (paper: ~150K total, 2/3 in the "
                 "Icache, FSMs < 0.2%)")
    report.table(
        ["metric", "measured", "paper"],
        [
            ("total transistors", budget.total, PAPER_TOTAL_TRANSISTORS),
            ("icache fraction", round(icache_fraction(budget), 3), "~0.67"),
            ("fsm area fraction", round(fsm_area_fraction(budget), 4),
             "< 0.002"),
        ],
        "Summary",
    )
    assert 0.8 * PAPER_TOTAL_TRANSISTORS < budget.total < \
        1.25 * PAPER_TOTAL_TRANSISTORS
    assert 0.60 < icache_fraction(budget) < 0.72
    assert fsm_area_fraction(budget) < 0.002


def test_icache_size_area_tradeoff(benchmark, report):
    trace = list(paper_regime_program().instruction_trace(300_000))
    report.name = "area_tradeoff"
    points = benchmark.pedantic(icache_size_tradeoff, args=(trace,),
                                rounds=1, iterations=1)
    rows = [(p.words, p.transistors, round(p.miss_ratio, 3),
             round(p.fetch_cost, 3), "yes" if p.fits_paper_die else "NO")
            for p in points]
    report.table(["icache words", "transistors", "miss ratio",
                  "fetch cost", "fits 150K die"], rows,
                 "Icache size vs area: why 512 words")
    by_words = {p.words: p for p in points}
    # 512 words fits the die; 1024 does not -- the paper's constraint
    assert by_words[512].fits_paper_die
    assert not by_words[1024].fits_paper_die
    # bigger caches do reduce the fetch cost (the temptation was real)
    assert by_words[1024].fetch_cost < by_words[512].fetch_cost
    assert by_words[512].fetch_cost < by_words[128].fetch_cost


def _bandwidth():
    return suite(PASCAL_SUITE, perfect_memory_config())


def test_memory_bandwidth(benchmark, report):
    report.name = "bandwidth"
    summary = benchmark.pedantic(_bandwidth, rounds=1, iterations=1)
    report.table(
        ["metric", "measured", "paper"],
        [
            ("data references / instruction",
             round(summary.data_reference_density, 3), "~0.33"),
            ("average bandwidth (MWords/s)",
             round(summary.average_bandwidth_mwords, 1), 26),
            ("peak bandwidth (MWords/s)", 40.0, 40),
        ],
        "E11: memory bandwidth at 20 MHz",
    )
    # the paper's estimate: data roughly every third cycle -> ~26 MW/s.
    # our naive compiler keeps values in memory rather than registers, so
    # its reference density runs somewhat above the paper's 1/3 estimate
    assert 0.20 < summary.data_reference_density < 0.55
    assert 22.0 < summary.average_bandwidth_mwords < 32.0
