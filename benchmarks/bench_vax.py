"""E13 -- the VAX 11/780 comparison.

Paper: with the Stanford compiler on both machines, MIPS-X executed ~25%
more instructions but ran ~14x faster (unoptimized code); against the
Berkeley Pascal compiler the path length gap was 80% and the speedup 10x.
Static code size: MIPS-X ~25% larger.

Our compiler is naive, so the measured path-length gap lands near the
paper's *Berkeley* datapoint (~1.8x); the speedup must stay around an
order of magnitude.
"""

from repro.analysis.vax import compare_suite


def test_vax_comparison(benchmark, report):
    report.name = "vax_comparison"
    comparisons = benchmark.pedantic(compare_suite, rounds=1, iterations=1)

    rows = [(c.name, c.mipsx_instructions, c.vax.instructions,
             round(c.path_length_ratio, 2), round(c.speedup, 1),
             round(c.code_size_ratio, 2)) for c in comparisons]
    report.table(["workload", "MIPS-X instrs", "VAX instrs", "path ratio",
                  "speedup", "code size ratio"], rows,
                 "E13: MIPS-X (20 MHz, full machine) vs VAX 11/780 model")

    n = len(comparisons)
    mean_path = sum(c.path_length_ratio for c in comparisons) / n
    mean_speedup = sum(c.speedup for c in comparisons) / n
    mean_code = sum(c.code_size_ratio for c in comparisons) / n
    report.table(
        ["metric", "measured", "paper (Stanford / Berkeley compiler)"],
        [
            ("path length ratio", round(mean_path, 2), "1.25 / 1.8"),
            ("speedup", round(mean_speedup, 1), "14x / 10x"),
            ("static code ratio", round(mean_code, 2), "1.25"),
        ],
        "Suite means",
    )

    # MIPS-X executes MORE instructions on every workload...
    for c in comparisons:
        assert c.path_length_ratio > 1.0, c.name
    # ... near the paper's Berkeley-backend gap for a naive compiler
    assert 1.2 < mean_path < 2.3
    # ... but wins by roughly an order of magnitude on wall clock
    assert 8.0 < mean_speedup < 22.0
    for c in comparisons:
        assert c.speedup > 5.0, c.name
    # static code is larger on the RISC
    assert mean_code > 1.0
