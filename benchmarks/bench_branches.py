"""E8/E9 -- branch statistics, quick-compare coverage, and prediction.

Paper claims reproduced:

* ~80% of branches need an explicit compare (condition codes would rarely
  be set as a by-product) -- the argument for dropping condition codes;
* 70-80% of branches could use the quick compare (equality and sign
  tests), the rest needing a two-step sequence -- and it was still
  dropped for cycle-time reasons;
* reorganized branch cost: ~1.5 cycles with traditional optimization,
  1.27 with the improved (profiled) optimizer;
* a branch cache must be much larger than 16 entries and "never did much
  better than static prediction".
"""

from repro.analysis.branch_schemes import evaluate_scheme
from repro.analysis.prediction import run_study
from repro.analysis.quick_compare import suite_stats
from repro.reorg.delay_slots import MIPSX_SCHEME
from repro.workloads import LISP_SUITE, PASCAL_SUITE

ALL = list(PASCAL_SUITE) + list(LISP_SUITE)


def test_branch_condition_statistics(benchmark, report):
    report.name = "branch_conditions"
    stats = benchmark.pedantic(suite_stats, rounds=1, iterations=1)
    report.table(
        ["metric", "measured", "paper"],
        [
            ("explicit compare needed", round(stats.explicit_compare_fraction, 2),
             "~0.80"),
            ("quick compare (as proposed)", round(stats.quick_fraction_strict, 2),
             "-"),
            ("quick compare (with compiler change)", round(stats.quick_fraction, 2),
             "0.70-0.80"),
        ],
        "E8: dynamic branch condition statistics",
    )
    report.table(
        ["class", "count"],
        [
            ("equality (beq/bne)", stats.equality),
            ("sign test vs zero", stats.sign_test),
            ("near-sign test vs zero (bgt/ble r0)", stats.near_sign_test),
            ("ordered register-register", stats.ordered_reg),
        ],
        "Branch condition classes",
    )
    # most branches need an explicit compare on a CC machine
    assert stats.explicit_compare_fraction > 0.6
    # a majority -- but far from all -- are quick-comparable
    assert 0.5 < stats.quick_fraction < 0.9
    assert stats.quick_fraction_strict < stats.quick_fraction
    assert stats.total > 10_000


def _branch_costs():
    profiled = evaluate_scheme(MIPSX_SCHEME, ALL)
    return profiled


def test_reorganized_branch_cost(benchmark, report):
    report.name = "branch_cost"
    profiled = benchmark.pedantic(_branch_costs, rounds=1, iterations=1)
    rows = [(c.name, c.executions, round(c.cycles_per_branch, 2))
            for c in profiled.per_workload]
    report.table(["workload", "branch executions", "cycles/branch"], rows,
                 "Branch cost under the shipped scheme "
                 "(2-slot squash optional, profiled prediction)")
    report.table(
        ["metric", "measured", "paper"],
        [("average cycles/branch", round(profiled.cycles_per_branch, 2),
          "1.5 traditional -> 1.27 improved")],
        "E8: reorganized branch cost",
    )
    # the improved-optimizer operating point (paper: 1.27-1.5)
    assert 1.1 < profiled.cycles_per_branch < 1.75


def test_branch_cache_vs_static_prediction(benchmark, report):
    report.name = "branch_prediction"
    study = benchmark.pedantic(run_study, rounds=1, iterations=1)
    report.table(["predictor", "mispredict rate"], study.rows(),
                 "E9: branch cache vs static prediction")

    by_entries = {}
    for result in study.caches:
        entries = int(result.name.split("(")[1].split()[0])
        by_entries[entries] = result.mispredict_rate
    static = study.static_profile.mispredict_rate

    # "never did much better than static prediction": even the largest
    # branch cache does not beat profiled static prediction
    assert min(by_entries.values()) >= static - 0.005
    # 16 entries is not enough: visibly worse than the asymptote
    assert by_entries[16] > min(by_entries.values()) + 0.005
    # BTFN (unprofiled static) is clearly worse than profiled static
    assert study.static_btfn.mispredict_rate > static
