"""E15 -- external cache behaviour on traces larger than the benchmarks.

The paper could not measure Ecache effects directly: "Our benchmark
programs have static code sizes in the range of 50 KBytes to 270 KBytes so
we cannot get exact numbers ... because most of the benchmarks fit
entirely", so they turned to much larger (ATUM) traces.  We do the same
with the synthetic large-program generator: data and instruction streams
with footprints well beyond 64K words, swept over Ecache sizes and write
policies, plus the late-miss cost accounting.
"""



from repro.core import EcacheConfig
from repro.ecache import Ecache
from repro.traces.synthetic import SyntheticProgram, paper_regime_program


def _data_study(sizes=(4096, 16384, 65536, 262144)):
    program = SyntheticProgram(data_words=400_000, seed=0xBADCAFE)
    refs = list(program.data_trace(400_000))
    rows = []
    for size in sizes:
        cache = Ecache(EcacheConfig(size_words=size))
        stall = 0
        for address, is_store in refs:
            if is_store:
                stall += cache.write(address, True)
            else:
                stall += cache.read(address, True)
        rows.append((size, cache.stats.miss_rate, stall / len(refs)))
    return rows


def test_ecache_size_sweep(benchmark, report):
    report.name = "ecache_sweep"
    rows = benchmark.pedantic(_data_study, rounds=1, iterations=1)
    report.table(["ecache words", "miss rate", "stall cycles/ref"],
                 [(size, round(miss, 3), round(stall, 3))
                  for size, miss, stall in rows],
                 "E15: Ecache size sweep on the large synthetic trace "
                 "(footprint 400K words)")
    rates = [miss for _, miss, _ in rows]
    # monotone improvement with size, and the 64K-word design point
    # already captures most of the locality
    assert all(a >= b for a, b in zip(rates, rates[1:]))
    assert rates[2] < 0.5 * rates[0]
    by_size = dict((size, miss) for size, miss, _ in rows)
    assert by_size[65536] < 0.12


def _write_policy_study():
    program = SyntheticProgram(data_words=300_000, seed=0x5EED)
    refs = list(program.data_trace(250_000))
    results = {}
    for write_through in (True, False):
        cache = Ecache(EcacheConfig(size_words=65536,
                                    write_through=write_through))
        stall = 0
        for address, is_store in refs:
            if is_store:
                stall += cache.write(address, True)
            else:
                stall += cache.read(address, True)
        results["write-through" if write_through else "write-back"] = (
            cache.stats.miss_rate, stall / len(refs))
    return results


def test_write_policy(benchmark, report):
    report.name = "ecache_write_policy"
    results = benchmark.pedantic(_write_policy_study, rounds=1, iterations=1)
    report.table(["policy", "miss rate", "stall cycles/ref"],
                 [(name, round(miss, 3), round(stall, 3))
                  for name, (miss, stall) in results.items()],
                 "Write policy (the board-level choice the paper leaves "
                 "open; buffered write-through never stalls on stores)")
    wt_miss, wt_stall = results["write-through"]
    wb_miss, wb_stall = results["write-back"]
    # write-back allocates on stores, so later loads hit more often...
    assert wb_miss <= wt_miss + 0.02
    # ...but write-through's buffered stores never stall
    assert wt_stall <= wb_stall + 0.05


def _instruction_side():
    trace = list(paper_regime_program().instruction_trace(300_000))
    rows = []
    for size in (8192, 65536):
        cache = Ecache(EcacheConfig(size_words=size))
        stall = sum(cache.ifetch(address, True) for address in trace)
        rows.append((size, cache.stats.miss_rate, stall / len(trace)))
    return rows


def test_instruction_fetchbacks_through_ecache(benchmark, report):
    report.name = "ecache_ifetch"
    rows = benchmark.pedantic(_instruction_side, rounds=1, iterations=1)
    report.table(["ecache words", "miss rate", "stall cycles/fetch"],
                 [(size, round(miss, 4), round(stall, 4))
                  for size, miss, stall in rows],
                 "Instruction side: the 40K-word synthetic program fits "
                 "the 64K-word Ecache (the paper's situation)")
    small, big = rows
    # the paper's point: the benchmarks "fit entirely" in the Ecache --
    # at 64K words only the compulsory (cold) misses remain
    compulsory = paper_regime_program().code_words / 4  # words per line
    assert big[1] < 0.05
    assert big[1] < small[1]
