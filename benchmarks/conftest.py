"""Shared fixtures for the experiment benchmarks.

Every benchmark regenerates one of the paper's tables or figures, prints
it, and writes it under ``benchmarks/results/`` so EXPERIMENTS.md can be
checked against fresh numbers at any time.

Run with::

    pytest benchmarks/ --benchmark-only

Per-benchmark wall-clock timings are folded into ``BENCH_pipeline.json``
(section ``pytest_benchmarks``) at session end, alongside the ``repro
bench`` telemetry, so the perf trajectory of the derivations themselves
is tracked across PRs.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_TIMINGS = {}


def pytest_runtest_logreport(report):
    if report.when == "call" and report.passed:
        _TIMINGS[report.nodeid] = round(report.duration, 3)


def pytest_sessionfinish(session, exitstatus):
    if not _TIMINGS:
        return
    try:
        from repro.harness.bench import merge_section

        merge_section("pytest_benchmarks", dict(sorted(_TIMINGS.items())))
    except Exception:
        pass          # telemetry must never fail the benchmark run


@pytest.fixture()
def report():
    """Collects report text; prints and persists it at teardown."""

    class Reporter:
        def __init__(self):
            self.sections = []
            self.name = None

        def add(self, text: str) -> None:
            self.sections.append(text)

        def table(self, headers, rows, title="") -> None:
            from repro.analysis.reporting import format_table

            self.add(format_table(headers, rows, title))

    reporter = Reporter()
    yield reporter
    if reporter.sections:
        text = "\n\n".join(reporter.sections) + "\n"
        print("\n" + text)
        if reporter.name:
            RESULTS_DIR.mkdir(exist_ok=True)
            (RESULTS_DIR / f"{reporter.name}.txt").write_text(text)
