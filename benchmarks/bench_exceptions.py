"""E14 -- exception handling cost and mechanics.

The paper's design goals, measured live:

* the pipeline halts (no instructions complete), the PC chain freezes
  with exactly the three uncompleted PCs, and the three-jump restart
  re-executes them exactly once;
* trap-on-overflow costs nothing when it does not fire (it replaced the
  sticky-overflow bit *because* the squash hardware made it free);
* an exception round trip (halt + handler entry + three-jump restart) is
  tens of cycles, dominated by the handler software, not the hardware.
"""

from repro.asm import assemble
from repro.core import Machine, PswBit, perfect_memory_config

PSW_TE = (1 << PswBit.MODE) | (1 << PswBit.SHIFT_EN) | (1 << PswBit.TE)

OVERFLOW_LOOP = f"""
.org 0
    br handler
    nop
    nop
.org 0x40
handler:
    la   s0, count
    ld   s1, 0(s0)
    nop
    addi s1, s1, 1
    st   s1, 0(s0)
    movfrs t0, pswold      ; clear TE so the re-executed add completes
    li    t1, {1 << PswBit.TE}
    not   t1, t1
    and   t0, t0, t1
    movtos pswold, t0
    jpc
    jpc
    jpcrs
.org 0x100
_start:
    li   s3, 20            ; iterations
loop:
    li   t9, {PSW_TE}
    movtos psw, t9
    li   t2, 0x7FFFFFFF
    li   t3, 1
    add  t4, t2, t3        ; traps every iteration
    addi s3, s3, -1
    bgt  s3, r0, loop
    nop
    nop
    halt
count: .word 0
"""

NO_TRAP_LOOP = """
_start:
    li   s3, 20
loop:
    li   t2, 0x7FFFFFFF
    li   t3, 1
    add  t4, t2, t3        ; overflows silently (TE off)
    addi s3, s3, -1
    bgt  s3, r0, loop
    nop
    nop
    halt
"""


def _run(source):
    machine = Machine(perfect_memory_config())
    machine.load_program(assemble(source))
    machine.run(1_000_000)
    assert machine.halted
    return machine


def test_exception_cost_and_restart(benchmark, report):
    report.name = "exceptions"
    machine = benchmark.pedantic(_run, args=(OVERFLOW_LOOP,),
                                 rounds=1, iterations=1)
    baseline = _run(NO_TRAP_LOOP)

    program = assemble(OVERFLOW_LOOP)
    trap_count = machine.memory.system.read(program.symbols["count"])
    exception_cycles = machine.stats.cycles
    # the movtos psw setup in the trap loop adds instructions; compare
    # per-exception overhead against its own instruction count instead
    per_exception = (exception_cycles
                     - machine.stats.retired) / machine.stats.exceptions

    report.table(
        ["metric", "value"],
        [
            ("traps taken", machine.stats.exceptions),
            ("handler executions recorded", trap_count),
            ("total cycles (20 trap iterations)", exception_cycles),
            ("baseline cycles (no traps)", baseline.stats.cycles),
            ("extra cycles per exception (non-retired)",
             round(per_exception, 1)),
        ],
        "E14: exception handling, measured live",
    )

    assert machine.stats.exceptions == 20
    assert trap_count == 20
    # after every restart the faulting add completed (TE cleared):
    assert machine.regs[14] == 0x80000000
    # the overflow trap costs nothing when it does not fire: the no-trap
    # loop has zero exception overhead
    assert baseline.stats.exceptions == 0
    # the hardware part of an exception is a handful of cycles; with the
    # handler software each round trip stays well under 100 cycles
    overhead = (exception_cycles - baseline.stats.cycles) / 20
    assert overhead < 100
    report.add(f"round-trip overhead vs no-trap loop: "
               f"{overhead:.1f} cycles/exception "
               "(dominated by handler software, as designed)")
