"""Ablations of the design choices DESIGN.md calls out.

Each ablation removes one mechanism the paper (or its software system)
relies on and measures what it was buying:

* reorganizer features: load-delay *scheduling* vs plain no-op padding,
  and profile-guided vs heuristic branch prediction;
* squashing itself: the shipped squash-optional scheme vs a no-squash
  machine (what Table 1 is about, here measured end-to-end in cycles);
* Icache replacement policy (LRU vs FIFO vs random) and sub-block
  placement's fetch granularity (the paper's one-valid-bit-per-word
  design vs whole-block fills).
"""


from repro.analysis.common import naive_unit, workload_profile
from repro.core import IcacheConfig, Machine, perfect_memory_config
from repro.icache.explorer import evaluate
from repro.reorg.delay_slots import MIPSX_SCHEME, BranchScheme
from repro.reorg.reorganizer import reorganize
from repro.traces.synthetic import paper_regime_program
from repro.workloads import get


def _run_variant(name, scheme=MIPSX_SCHEME, profile=True,
                 schedule_loads=True):
    workload = get(name)
    directions = dict(workload_profile(name)) if profile else None
    result = reorganize(naive_unit(workload), scheme, profile=directions,
                        schedule_loads=schedule_loads)
    machine = Machine(perfect_memory_config())
    machine.load_program(result.unit.assemble())
    machine.run(30_000_000)
    assert machine.halted
    return machine.stats


def _reorganizer_ablation(names):
    variants = {
        "full (schedule + profile + squash)": {},
        "no load scheduling": {"schedule_loads": False},
        "no profiling (BTFN heuristic)": {"profile": False},
        "no squashing at all": {"scheme": BranchScheme(2, "none")},
    }
    rows = []
    for label, kwargs in variants.items():
        cycles = 0
        noops = 0
        retired = 0
        for name in names:
            stats = _run_variant(name, **kwargs)
            cycles += stats.cycles
            noops += stats.noops
            retired += stats.retired
        rows.append((label, cycles, round(noops / retired, 3)))
    return rows


def test_reorganizer_feature_ablation(benchmark, report):
    report.name = "ablation_reorganizer"
    names = ["fib", "sieve", "towers", "listops", "queens"]
    rows = benchmark.pedantic(_reorganizer_ablation, args=(names,),
                              rounds=1, iterations=1)
    report.table(["reorganizer variant", "total cycles", "no-op fraction"],
                 rows, "Reorganizer feature ablation (5 workloads, "
                       "perfect memory)")
    by_label = {label: (cycles, noops) for label, cycles, noops in rows}
    full_cycles, full_noops = by_label[
        "full (schedule + profile + squash)"]
    # every removed feature costs cycles
    assert by_label["no load scheduling"][0] >= full_cycles
    assert by_label["no profiling (BTFN heuristic)"][0] >= full_cycles
    assert by_label["no squashing at all"][0] > full_cycles
    # scheduling specifically removes no-ops
    assert by_label["no load scheduling"][1] > full_noops


def _replacement_ablation(trace):
    rows = []
    for policy in ("lru", "fifo", "random"):
        result = evaluate(IcacheConfig(replacement=policy), trace)
        rows.append((policy, round(result.miss_ratio, 4),
                     round(result.fetch_cost, 4)))
    return rows


def test_icache_replacement_ablation(benchmark, report):
    report.name = "ablation_replacement"
    trace = list(paper_regime_program().instruction_trace(250_000))
    rows = benchmark.pedantic(_replacement_ablation, args=(trace,),
                              rounds=1, iterations=1)
    report.table(["replacement", "miss ratio", "fetch cost"], rows,
                 "Icache replacement policy (Smith 1982: ~12% spread "
                 "between LRU and non-usage-based policies)")
    by_policy = {policy: miss for policy, miss, _ in rows}
    # LRU at least matches the non-usage-based policies (and the spread
    # stays modest, as in Smith's measurements)
    assert by_policy["lru"] <= by_policy["fifo"] * 1.02
    assert by_policy["lru"] <= by_policy["random"] * 1.02
    assert by_policy["fifo"] < by_policy["lru"] * 1.35
    assert by_policy["random"] < by_policy["lru"] * 1.35


def _subblock_ablation(trace):
    """Sub-block placement vs whole-block fills under equal block size.

    Without sub-block valid bits a miss must fetch the whole 16-word
    block; with the paper's 16-word blocks that is an 16-cycle service
    (one word per cycle of cache write bandwidth) versus the 2-cycle
    double fetch-back."""
    subblock = evaluate(IcacheConfig(), trace)
    whole = evaluate(
        IcacheConfig(fetchback=16, miss_cycles=16), trace)
    small_blocks = evaluate(
        IcacheConfig(sets=16, ways=8, block_words=4, fetchback=4,
                     miss_cycles=4), trace)
    return [
        ("sub-block, 2-word fetch-back (paper)", subblock.miss_ratio,
         subblock.fetch_cost),
        ("whole 16-word block fills", whole.miss_ratio, whole.fetch_cost),
        ("4-word blocks, whole-block fills", small_blocks.miss_ratio,
         small_blocks.fetch_cost),
    ]


def test_subblock_placement_ablation(benchmark, report):
    report.name = "ablation_subblock"
    trace = list(paper_regime_program().instruction_trace(250_000))
    rows = benchmark.pedantic(_subblock_ablation, args=(trace,),
                              rounds=1, iterations=1)
    report.table(["fill policy", "miss ratio", "fetch cost"],
                 [(label, round(miss, 3), round(cost, 3))
                  for label, miss, cost in rows],
                 "Sub-block placement ablation: why one valid bit per word")
    paper_cost = rows[0][2]
    whole_cost = rows[1][2]
    # whole-block fills improve the miss ratio but lose on fetch cost:
    # exactly why MIPS-X kept large blocks only via sub-block placement
    assert rows[1][1] < rows[0][1]
    assert whole_cost > paper_cost
