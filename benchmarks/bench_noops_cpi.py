"""E6/E7 -- no-op fractions and overall CPI/throughput.

Paper results:

* 15.6% of Pascal instructions and 18.3% of Lisp instructions are no-ops
  "due to unused branch delays or other pipeline interlocks that cannot
  be optimized away" (Lisp is worse because of jumps and the load-load
  interlocks of car/cdr chains);
* with memory overhead included, the average instruction takes about 1.7
  cycles -- a sustained throughput above 11 MIPS at 20 MHz.
"""

from repro.analysis.cpi import measure, scaled_memory_config, suite
from repro.core import perfect_memory_config
from repro.workloads import LISP_SUITE, PASCAL_SUITE


def _noop_experiment():
    config = perfect_memory_config()
    pascal = suite(PASCAL_SUITE, config)
    lisp = suite(LISP_SUITE, config)
    return pascal, lisp


def test_noop_fractions(benchmark, report):
    report.name = "noop_fractions"
    pascal, lisp = benchmark.pedantic(_noop_experiment, rounds=1,
                                      iterations=1)
    rows = []
    for summary, label, paper in ((pascal, "Pascal", 0.156),
                                  (lisp, "Lisp", 0.183)):
        rows.append((label, round(summary.mean_noop_fraction, 3),
                     round(summary.noop_fraction, 3), paper))
    report.table(["suite", "no-op fraction (mean)", "(weighted)", "paper"],
                 rows, "E6: no-op fraction by suite")
    detail = [(b.name, round(b.noop_fraction, 3), round(b.cpi, 3))
              for b in pascal.breakdowns + lisp.breakdowns]
    report.table(["workload", "no-op fraction", "pipe-only CPI"], detail,
                 "Per-workload detail (perfect memory)")

    # shape: Lisp pays more for its load-load chains and jumps
    assert lisp.mean_noop_fraction > pascal.mean_noop_fraction
    # magnitudes near the paper's 15.6% / 18.3%
    assert 0.10 < pascal.mean_noop_fraction < 0.20
    assert 0.13 < lisp.mean_noop_fraction < 0.27


def _cpi_experiment():
    config = scaled_memory_config()
    names = list(PASCAL_SUITE) + list(LISP_SUITE)
    return suite(names, config), [measure(name, config) for name in names]


def test_overall_cpi_and_throughput(benchmark, report):
    report.name = "cpi_throughput"
    summary, breakdowns = benchmark.pedantic(_cpi_experiment, rounds=1,
                                             iterations=1)
    rows = [(b.name, round(b.cpi, 2), round(b.base_cpi, 2),
             round(b.memory_overhead_cpi, 2),
             round(b.icache_miss_rate, 3),
             round(b.average_fetch_cost, 2),
             round(b.sustained_mips, 1)) for b in breakdowns]
    report.table(["workload", "CPI", "pipe CPI", "memory CPI",
                  "icache miss", "fetch cost", "MIPS"], rows,
                 "E7: CPI decomposition on the scaled memory system")
    report.table(
        ["metric", "measured", "paper"],
        [
            ("suite CPI", round(summary.cpi, 2), 1.7),
            ("sustained MIPS @20MHz", round(summary.sustained_mips, 1),
             "above 11"),
            ("icache miss rate", round(summary.icache_miss_rate, 3), 0.12),
        ],
        "Suite summary",
    )

    # the paper's operating point: CPI ~1.7, sustained MIPS above 11
    assert 1.4 < summary.cpi < 2.0
    assert summary.sustained_mips > 10.0
    assert 0.08 < summary.icache_miss_rate < 0.17
    # decomposition sanity: base + memory = total
    for b in breakdowns:
        assert abs(b.base_cpi + b.memory_overhead_cpi - b.cpi) < 1e-9
