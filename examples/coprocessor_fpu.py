#!/usr/bin/env python3
"""The coprocessor interface in action: an FPU dot product.

Demonstrates the paper's final (address-line) interface:

* ``cop`` sends a coprocessor instruction over the address lines
  (``r[base] + offset`` *is* the instruction; one pin tells the memory
  system to ignore the cycle);
* ``ldf``/``stf`` move memory words directly into/out of the privileged
  coprocessor's registers in a single instruction;
* ``movfrc`` reads a coprocessor register or status over the data bus
  (with load timing: one delay slot);
* branching on an FPU condition = fcmp, read the status register, branch
  -- the sequence that replaced the dropped coprocessor-branch opcodes.
"""

import struct

from repro.asm import assemble
from repro.coproc import Fpu, FpuOp, float_to_word, fpu_op, word_to_float
from repro.core import Machine, MachineConfig

N = 16
a_values = [0.5 + 0.25 * i for i in range(N)]
b_values = [2.0 - 0.125 * i for i in range(N)]

fmul = fpu_op(FpuOp.FMUL, 1, 2)     # f1 <- f1 * f2
fadd = fpu_op(FpuOp.FADD, 0, 1)     # f0 <- f0 + f1
fcmp = fpu_op(FpuOp.FCMP, 0, 3)     # compare f0 with f3
read_acc = fpu_op(FpuOp.MFC_RAW, 0)
read_status = fpu_op(FpuOp.MFC_STATUS)

SOURCE = f"""
_start:
    la   t0, vec_a
    la   t1, vec_b
    li   t2, {N}
    movtoc r0, {fpu_op(FpuOp.MTC_RAW, 0)}(r0)   ; f0 <- 0.0
loop:
    ldf  f1, 0(t0)          ; a[i] straight into the FPU
    ldf  f2, 0(t1)
    cop  {fmul}(r0)         ; coprocessor instruction on the address lines
    cop  {fadd}(r0)
    addi t0, t0, 1
    addi t1, t1, 1
    addi t2, t2, -1
    bgt  t2, r0, loop
    nop
    nop
    ; compare the accumulated dot product against 40.0 and branch on it
    la   t3, threshold
    ldf  f3, 0(t3)
    cop  {fcmp}(r0)
    movfrc t4, {read_status}(r0)
    nop                     ; movfrc has load timing: one delay slot
    li   t5, 4              ; STATUS_GT
    and  t4, t4, t5
    beq  t4, r0, small
    nop
    nop
    li   t6, 1              ; flag: dot product > 40.0
    br   out
    nop
    nop
small:
    li   t6, 0
out:
    movfrc t7, {read_acc}(r0)
    nop
    li   a0, 0x3FFFF0
    st   t7, 0(a0)          ; raw float bits of the result
    st   t6, 0(a0)          ; comparison flag
    halt

threshold: .word {float_to_word(40.0)}
vec_a: .word {", ".join(str(float_to_word(v)) for v in a_values)}
vec_b: .word {", ".join(str(float_to_word(v)) for v in b_values)}
"""

machine = Machine(MachineConfig())
machine.attach_coprocessor(Fpu())
machine.load_program(assemble(SOURCE))
stats = machine.run()

raw_bits, flag = machine.console.values
result = word_to_float(raw_bits & 0xFFFFFFFF)


def single(x):
    return struct.unpack("<f", struct.pack("<f", x))[0]


expected = 0.0
for a, b in zip(a_values, b_values):
    expected = single(expected + single(single(a) * single(b)))

print(f"dot product (FPU)    : {result}")
print(f"dot product (Python) : {expected}")
print(f"greater than 40.0?   : {bool(flag)}")
print(f"coprocessor ops      : {stats.coproc_ops}")
print(f"FPU memory transfers : {stats.loads} ldf")
print(f"cycles               : {stats.cycles}  (CPI {stats.cpi:.2f})")
print()
print("note: every coprocessor instruction above was CACHED like a normal")
print("instruction -- the property the address-line interface bought for")
print(f"one extra pin (icache miss rate this run: "
      f"{machine.icache.stats.miss_rate:.1%})")

assert abs(result - expected) < 1e-3
assert bool(flag) == (expected > 40.0)
