#!/usr/bin/env python3
"""The Lisp story: car/cdr chains and load-load interlocks.

The paper: "For Lisp, this number increases slightly to 18.3% due to a
larger number of jumps and many load-load interlocks caused by chasing car
and cdr chains."  This example makes the effect visible: a cons-cell list
reversal whose inner loop is a dependent load chain the reorganizer cannot
hide, compared against an array-sum loop it hides almost completely.
"""

from repro.core import Machine, perfect_memory_config
from repro.lang import compile_spl

LIST_CHASE = """
program chase;
var car[2001], cdr[2001], freeptr, lst, n;

func cons(a, d);
var cell;
begin
    cell := freeptr;
    freeptr := freeptr + 1;
    car[cell] := a;
    cdr[cell] := d;
    return cell;
end;

func sumlist(p);
var total;
begin
    total := 0;
    while p <> 0 do begin
        total := total + car[p];   { load car[p] ... }
        p := cdr[p];               { ... then chase cdr[p]: a load chain }
    end;
    return total;
end;

begin
    freeptr := 1;
    lst := 0;
    for n := 500 downto 1 do lst := cons(n, lst);
    write(sumlist(lst));
end.
"""

ARRAY_SUM = """
program arraysum;
var data[501], n, total;

begin
    for n := 1 to 500 do data[n] := n;
    total := 0;
    for n := 1 to 500 do total := total + data[n];
    write(total);
end.
"""


def run(source, label):
    machine = Machine(perfect_memory_config())
    machine.load_program(compile_spl(source).program())
    stats = machine.run()
    print(f"=== {label} ===")
    print(f"output          : {machine.console.values}")
    print(f"instructions    : {stats.retired}")
    print(f"no-ops executed : {stats.noops} ({stats.noop_fraction:.1%})")
    print(f"loads           : {stats.loads} "
          f"({stats.loads / stats.retired:.2f} per instruction)")
    print(f"jumps + branches: {stats.jumps + stats.branches}")
    print()
    return stats


chase = run(LIST_CHASE, "cons-cell list chase (Lisp-like)")
arrays = run(ARRAY_SUM, "array sum (Pascal-like)")

print("the Lisp effect, quantified:")
print(f"  list-chase no-op fraction : {chase.noop_fraction:.1%}")
print(f"  array-sum  no-op fraction : {arrays.noop_fraction:.1%}")
print("  the cdr chain is a dependent load every iteration: nothing can")
print("  be scheduled into its delay slot, so the no-ops stay -- the")
print("  paper's 18.3% vs 15.6%.")

assert chase.noop_fraction > arrays.noop_fraction
