#!/usr/bin/env python3
"""Quickstart: assemble a program, run it cycle-accurately, read the stats.

This is the five-minute tour of the public API:

1. write MIPS-X assembly (delay slots are *your* problem in hand-written
   code -- or use the reorganizer, see below);
2. assemble it to a Program image;
3. run it on a cycle-accurate Machine;
4. inspect console output and pipeline statistics;
5. let the reorganizer handle the delay slots for naive code instead.
"""

from repro.asm import assemble, listing, parse
from repro.core import Machine, MachineConfig, perfect_memory_config
from repro.reorg import reorganize

# ---------------------------------------------------------------------------
# 1-2. Hand-written assembly.  Note the explicit pipeline discipline:
#      two delay slots after every branch/jump, one after every load.
# ---------------------------------------------------------------------------
HAND_WRITTEN = """
; sum the integers 1..10, print the result to the console
_start:
    li   t0, 0          ; sum
    li   t1, 10         ; counter
loop:
    add  t0, t0, t1
    addi t1, t1, -1
    bgt  t1, r0, loop   ; branch resolves in ALU: two delay slots follow
    nop                 ; slot 1
    nop                 ; slot 2
    li   a0, 0x3FFFF0   ; console MMIO port
    st   t0, 0(a0)
    halt
"""

program = assemble(HAND_WRITTEN)
machine = Machine(MachineConfig())          # the paper's machine: 20 MHz,
machine.load_program(program)               # 512-word Icache, 64K Ecache
stats = machine.run()

print("=== hand-written assembly ===")
print(f"console output : {machine.console.values}")
print(f"cycles         : {stats.cycles}")
print(f"instructions   : {stats.retired} (of which {stats.noops} no-ops)")
print(f"CPI            : {stats.cpi:.3f}")
print(f"branches       : {stats.branches} ({stats.branches_taken} taken)")
print(f"icache         : {machine.icache.stats.miss_rate:.1%} miss rate")
print(f"at 20 MHz      : {stats.mips(20.0):.1f} sustained MIPS")

# ---------------------------------------------------------------------------
# 3-5. The same program in *naive* form: branches act immediately, loads
#      are immediately usable.  The reorganizer makes it pipeline-correct
#      (and faster than our nop-filled version: it fills the delay slots).
# ---------------------------------------------------------------------------
NAIVE = """
_start:
    li   t0, 0
    li   t1, 10
loop:
    add  t0, t0, t1
    addi t1, t1, -1
    bgt  t1, r0, loop   ; no slots: the reorganizer will create and fill them
    li   a0, 0x3FFFF0
    st   t0, 0(a0)
    halt
"""

result = reorganize(parse(NAIVE))
machine2 = Machine(perfect_memory_config())  # ideal memory: pipeline only
machine2.load_program(result.unit.assemble())
stats2 = machine2.run()

print("\n=== reorganized naive code ===")
print(listing(result.unit.assemble()))
print(f"\nconsole output : {machine2.console.values}")
print(f"cycles         : {stats2.cycles}  (pipeline-only, ideal memory)")
print(f"slots filled   : {result.stats.fill.filled_above} from above, "
      f"{result.stats.fill.filled_target} from the branch target, "
      f"{result.stats.fill.filled_nop} no-ops")

assert machine.console.values == [55]
assert machine2.console.values == [55]
print("\nboth machines computed sum(1..10) = 55")
