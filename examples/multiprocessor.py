#!/usr/bin/env python3
"""The project's end goal: MIPS-X nodes in a shared-memory multiprocessor.

"The goal of the MIPS-X project was to ... build a single processor with a
peak rate of 20 MIPS and then to use 6-10 of these processors as the nodes
in a shared memory multiprocessor.  The resulting machine would be about
two orders of magnitude more powerful than a VAX 11/780."

This example runs a parallel reduction on 1, 2, 4 and 8 nodes (each node
sums a strided share of an array; node 0 combines), measures the speedup,
and then multiplies it by the single-node VAX comparison to check the
paper's two-orders-of-magnitude arithmetic.
"""

from repro.asm import assemble
from repro.core import MachineConfig
from repro.multi import MultiMachine

N = 512
VALUES = [(7 * i + 3) % 101 for i in range(N)]

# strided: node k touches data[k], data[k+ncpu], ... -- one word per
# Ecache line, no reuse, every load a bus transaction
STRIDED_LOOP = """
    li   s0, 0
    mov  t0, gp
    li   s2, {n}
sumloop:
    la   t1, data
    add  t1, t1, t0
    ld   t2, 0(t1)
    nop
    add  s0, s0, t2
    addi t0, t0, {ncpu}
    blt  t0, s2, sumloop
    nop
    nop
"""

# blocked: node k sums a contiguous chunk -- four words per line fetched,
# a quarter of the bus traffic
BLOCKED_LOOP = """
    li   s0, 0
    mov  t9, gp
    sll  t9, t9, {chunk_shift}   ; start = gp * chunk
    mov  t0, t9
    addi s2, t9, {chunk}         ; end = start + chunk
sumloop:
    la   t1, data
    add  t1, t1, t0
    ld   t2, 0(t1)
    nop
    add  s0, s0, t2
    addi t0, t0, 1
    blt  t0, s2, sumloop
    nop
    nop
"""

SOURCE_TEMPLATE = """
_start:
{loop}
    la   t3, partial
    add  t3, t3, gp
    st   s0, 0(t3)
    la   t4, done
    add  t4, t4, gp
    li   t5, 1
    st   t5, 0(t4)
    bne  gp, r0, finish
    nop
    nop
    li   t6, 0
waitloop:
    la   t7, done
    add  t7, t7, t6
    ld   t8, 0(t7)
    nop
    beq  t8, r0, waitloop
    nop
    nop
    addi t6, t6, 1
    li   t9, {ncpu}
    blt  t6, t9, waitloop
    nop
    nop
    li   s1, 0
    li   t6, 0
combine:
    la   t7, partial
    add  t7, t7, t6
    ld   t8, 0(t7)
    nop
    add  s1, s1, t8
    addi t6, t6, 1
    blt  t6, t9, combine
    nop
    nop
    li   a0, 0x3FFFF0
    st   s1, 0(a0)
finish:
    halt
partial: .space {ncpu}
done:    .space {ncpu}
data:    .word {data}
"""


def run(ncpu, blocked):
    import math

    chunk = N // ncpu
    loop = (BLOCKED_LOOP.format(chunk=chunk,
                                chunk_shift=int(math.log2(chunk)))
            if blocked else STRIDED_LOOP.format(n=N, ncpu=ncpu))
    source = SOURCE_TEMPLATE.format(
        loop=loop, n=N, ncpu=ncpu, data=", ".join(map(str, VALUES)))
    system = MultiMachine(ncpu, MachineConfig())
    system.load_program(assemble(source))
    system.run(20_000_000)
    assert system.all_halted
    assert system.console.values == [sum(VALUES)], system.console.values
    return system


print(f"parallel sum of {N} words, answer = {sum(VALUES)}\n")
baseline = None
for blocked in (False, True):
    label = "blocked (contiguous chunks)" if blocked else \
        "strided (one word per cache line: bus-bound)"
    print(f"--- {label} ---")
    print(f"{'nodes':>5}  {'cycles':>8}  {'speedup':>7}  "
          f"{'bus waits':>9}")
    for ncpu in (1, 2, 4, 8):
        system = run(ncpu, blocked)
        if baseline is None:
            baseline = system.cycles
        print(f"{ncpu:>5}  {system.cycles:>8}  "
              f"{baseline / system.cycles:>7.2f}"
              f"  {system.bus.contention_cycles:>9}")
    print()

speedup8 = baseline / run(8, blocked=True).cycles
single_vs_vax = 14.9  # measured by benchmarks/bench_vax.py
print(f"\nthe paper's arithmetic: one node is ~{single_vs_vax:.0f}x a "
      f"VAX 11/780;")
print(f"eight nodes at {speedup8:.1f}x parallel speedup ~= "
      f"{single_vs_vax * speedup8:.0f}x a VAX -- "
      "the 'two orders of magnitude' target")
