#!/usr/bin/env python3
"""Re-run the paper's key design tradeoffs in one sitting.

Three of the decisions the paper spends sections on, each as a quick
design-space exploration using the library's analysis machinery:

1. branch schemes (Table 1) on a subset of the Pascal suite;
2. Icache fetch-back count and miss service time;
3. the coprocessor interface candidates on a measured FP mix.
"""

from repro.analysis.branch_schemes import PAPER_TABLE1, table1
from repro.analysis.common import run_measured
from repro.analysis.reporting import format_table
from repro.coproc.schemes import comparison_rows, mix_from_machine
from repro.icache.explorer import fetchback_study, service_time_study
from repro.traces.synthetic import paper_regime_program

# --- 1. branch schemes ------------------------------------------------------
SUBSET = ["fib", "sieve", "towers", "queens"]
rows = []
for evaluation in table1(SUBSET):
    name = evaluation.scheme.name
    rows.append((name, round(evaluation.cycles_per_branch, 2),
                 PAPER_TABLE1[name]))
print(format_table(["branch scheme", "cycles/branch", "paper"], rows,
                   "Table 1 on a 4-workload subset"))
print()

# --- 2. instruction cache ---------------------------------------------------
trace = list(paper_regime_program().instruction_trace(200_000))
rows = [(r.label, round(r.miss_ratio, 3), round(r.fetch_cost, 3))
        for r in fetchback_study(trace)]
print(format_table(["fetch-back", "miss ratio", "fetch cost"], rows,
                   "Fetch-back count (paper: 2 words ~halves the ratio)"))
print()
rows = [(r.label, round(r.miss_ratio, 3), round(r.fetch_cost, 3))
        for r in service_time_study(trace)]
print(format_table(["organization", "miss ratio", "fetch cost"], rows,
                   "Service time beats organization"))
print()

# --- 3. coprocessor interface -----------------------------------------------
mix = mix_from_machine("fp_dot", run_measured("fp_dot"))
print(format_table(
    ["interface scheme", "extra pins", "relative perf", "cacheable"],
    comparison_rows([mix]),
    f"Coprocessor interfaces on fp_dot "
    f"({mix.fp_fraction:.0%} FP instructions)"))
print()
print("every table above is regenerated from scratch by this script; the")
print("full-suite versions live in benchmarks/ (pytest benchmarks/ "
      "--benchmark-only)")
