#!/usr/bin/env python3
"""Compile a Pascal-style program with the SPL compiler and measure it.

Reproduces the paper's software pipeline end to end: high-level source ->
naive code -> profile-guided reorganization -> cycle-accurate execution,
with the CPI decomposition the paper reports (no-op fraction, Icache fetch
cost, memory overhead).
"""

from repro.analysis.cpi import measure, scaled_memory_config
from repro.analysis.common import profiled_result
from repro.asm import listing
from repro.core import Machine, MachineConfig
from repro.lang import compile_spl

SOURCE = """
program primesum;
var total, count;

func isprime(n);
var d;
begin
    if n < 2 then return 0;
    d := 2;
    while d * d <= n do begin
        if n mod d = 0 then return 0;
        d := d + 1;
    end;
    return 1;
end;

begin
    total := 0;
    count := 0;
    for count := 2 to 300 do
        if isprime(count) = 1 then total := total + count;
    write(total);   { sum of primes below 301 }
end.
"""

# --- compile (the compiler emits naive code; the reorganizer fixes it) ----
compilation = compile_spl(SOURCE)
print("=== first lines of the reorganized program ===")
print(listing(compilation.program(), limit=24))

reorg_stats = compilation.reorg.stats
print("\n=== reorganizer statistics ===")
print(f"load-use pairs found   : {reorg_stats.pad.load_use_pairs}")
print(f"  hidden by scheduling : {reorg_stats.pad.scheduled}")
print(f"  padded with no-ops   : {reorg_stats.pad.nops_inserted}")
fill = reorg_stats.fill
print(f"branch slots           : {fill.slots_total} "
      f"(above={fill.filled_above}, target={fill.filled_target}, "
      f"nop={fill.filled_nop})")

# --- run on the full machine ----------------------------------------------
machine = Machine(MachineConfig())
machine.load_program(compilation.program())
stats = machine.run()
print("\n=== execution (paper-configuration machine) ===")
print(f"output       : {machine.console.values}")
print(f"cycles       : {stats.cycles}")
print(f"CPI          : {stats.cpi:.3f}")
print(f"no-op frac   : {stats.noop_fraction:.1%}")

expected = sum(n for n in range(2, 301)
               if all(n % d for d in range(2, int(n ** 0.5) + 1)))
assert machine.console.values == [expected], (machine.console.values, expected)

# --- the workload-suite measurement machinery ------------------------------
print("\n=== a registered workload through the experiment machinery ===")
breakdown = measure("queens", scaled_memory_config())
print(f"queens on the scaled memory system:")
print(f"  CPI {breakdown.cpi:.2f} = pipe {breakdown.base_cpi:.2f} "
      f"+ memory {breakdown.memory_overhead_cpi:.2f}")
print(f"  icache miss rate {breakdown.icache_miss_rate:.1%}, "
      f"avg fetch cost {breakdown.average_fetch_cost:.2f} cycles")
print(f"  {breakdown.sustained_mips:.1f} sustained MIPS at 20 MHz")

result = profiled_result("queens")
print(f"  static code: {result.unit.assemble().code_size} words")
