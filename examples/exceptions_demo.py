#!/usr/bin/env python3
"""Exception handling: the halted pipeline, the PC chain, and the
three-jump restart.

This walks the paper's exception design with a live machine:

1. the program enables the maskable trap-on-overflow (PSW.TE) and then
   overflows an add;
2. the pipeline halts: nothing in flight completes, the PC chain freezes
   with the PCs of the three uncompleted instructions, PSW -> PSWold, and
   fetch vectors to address 0 in system space;
3. the handler reads the chain, records the event, fixes the cause (here:
   clears TE in PSWold), reloads the chain, and returns with
   ``jpc; jpc; jpcrs`` -- each jump redirecting to the next chain entry
   while the following jumps ride in its delay slots;
4. the three frozen instructions re-execute exactly once and the program
   continues as if nothing happened.
"""

from repro.asm import assemble
from repro.core import Machine, PswBit, perfect_memory_config

PSW_TE = (1 << PswBit.MODE) | (1 << PswBit.SHIFT_EN) | (1 << PswBit.TE)

SOURCE = f"""
; ---- exception vector (address 0, system space) -------------------------
.org 0
    br handler
    nop
    nop

.org 0x40
handler:
    ; save the frozen PC chain where the host can inspect it
    movfrs s0, pc1
    movfrs s1, pc2
    movfrs s2, pc3
    la   t0, saved_pcs
    st   s0, 0(t0)
    st   s1, 1(t0)
    st   s2, 2(t0)
    ; record the trap
    la   t1, trap_count
    ld   t2, 0(t1)
    nop
    addi t2, t2, 1
    st   t2, 0(t1)
    ; clear TE in PSWold so the re-executed add completes this time
    movfrs t3, pswold
    li   t4, {1 << PswBit.TE}
    not  t4, t4
    and  t3, t3, t4
    movtos pswold, t3
    ; reload the chain (it is still frozen with the right values) and
    ; perform the three special jumps; jpcrs restores the PSW last
    jpc
    jpc
    jpcrs

; ---- the program ---------------------------------------------------------
.org 0x100
_start:
    li   t9, {PSW_TE}
    movtos psw, t9
    li   t5, 0x7FFFFFFF
    li   t6, 1
marker:
    add  t7, t5, t6      ; overflows -> trap; re-executes after the handler
    li   t8, 1234        ; proof that execution continued
    li   a0, 0x3FFFF0
    st   t7, 0(a0)
    st   t8, 0(a0)
    halt

saved_pcs:  .space 3
trap_count: .word 0
"""

program = assemble(SOURCE)
machine = Machine(perfect_memory_config())
machine.load_program(program)
stats = machine.run()

saved = [machine.memory.system.read(program.symbols["saved_pcs"] + i)
         for i in range(3)]
marker = program.symbols["marker"]

print(f"traps taken            : {stats.exceptions}")
print(f"trap_count in memory   : "
      f"{machine.memory.system.read(program.symbols['trap_count'])}")
print(f"frozen PC chain        : {[hex(pc) for pc in saved]}")
print(f"faulting instruction at: {hex(marker)} (middle chain entry)")
print(f"console output         : {machine.console.values}")
print(f"PSW after return+halt  : {machine.psw!r}")

# the chain holds [pc(MEM), pc(ALU=faulter), pc(RF)]
assert saved[1] == marker
assert saved[0] == marker - 1 and saved[2] == marker + 1
# the re-executed add completed with the wrapped value, and execution
# continued normally (t7 printed as a signed word: INT_MIN)
assert machine.console.values == [-(1 << 31), 1234]
assert stats.exceptions == 1
print("\nrestart verified: the three frozen instructions re-executed "
      "exactly once and the program finished normally")
