"""Repo-level pytest wiring: the ``slow`` marker opt-in.

Tests marked ``@pytest.mark.slow`` (multi-second simulation sweeps) are
skipped by default so the tier-1 suite stays fast; run them with::

    PYTHONPATH=src python -m pytest --run-slow
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--run-slow", action="store_true", default=False,
        help="run tests marked @pytest.mark.slow")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-slow"):
        return
    skip_slow = pytest.mark.skip(reason="slow suite: pass --run-slow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
